package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Compressed adjacency storage (Ligra+-style): each vertex's sorted
// neighbor list is delta-encoded — the first target relative to the source
// id (zigzag-signed), subsequent targets as gaps — and written as uvarints.
// Weights are stored as uvarint-rounded floats when integral (the common
// case for generated graphs) or raw bits otherwise. The compressed form is
// a storage/interchange format: LoadCompressed decodes back to the plain
// CSR the engines traverse.

const compressedMagic = uint32(0x474c4e43) // "GLNC"

// WriteCompressed writes g in the compressed binary format and returns the
// number of payload bytes written for the adjacency data.
func WriteCompressed(w io.Writer, g *Graph) (int64, error) {
	bw := bufio.NewWriter(w)
	var flags uint32
	if g.Directed {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	hdr := []uint32{compressedMagic, flags, uint32(g.NumVertices()), uint32(g.NumEdges())}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return 0, err
		}
	}
	name := []byte(g.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return 0, err
	}
	if _, err := bw.Write(name); err != nil {
		return 0, err
	}

	var payload int64
	buf := make([]byte, binary.MaxVarintLen64)
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf, x)
		payload += int64(n)
		_, err := bw.Write(buf[:n])
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nbrs, ws := g.OutEdges(VertexID(v))
		if err := putUvarint(uint64(len(nbrs))); err != nil {
			return payload, err
		}
		prev := int64(v)
		for i, d := range nbrs {
			delta := int64(d) - prev
			if i == 0 {
				// First neighbor: signed delta from the source id (zigzag).
				if err := putUvarint(zigzag(delta)); err != nil {
					return payload, err
				}
			} else {
				// Later neighbors: strictly positive gaps (lists are sorted
				// and deduplicated), stored as gap-1.
				if err := putUvarint(uint64(delta - 1)); err != nil {
					return payload, err
				}
			}
			prev = int64(d)
			if ws != nil {
				if err := putWeight(bw, ws[i], putUvarint, &payload); err != nil {
					return payload, err
				}
			}
		}
	}
	return payload, bw.Flush()
}

// putWeight encodes an integral weight as 2*w (even marker) and a
// non-integral one as a tagged raw float32 (odd marker followed by 4 bytes).
func putWeight(bw *bufio.Writer, w Weight, putUvarint func(uint64) error, payload *int64) error {
	if w >= 0 && w == Weight(uint64(w)) && uint64(w) < 1<<62 {
		return putUvarint(uint64(w) << 1)
	}
	if err := putUvarint(1); err != nil {
		return err
	}
	var raw [4]byte
	binary.LittleEndian.PutUint32(raw[:], math.Float32bits(float32(w)))
	*payload += 4
	_, err := bw.Write(raw[:])
	return err
}

// ReadCompressed decodes a graph written by WriteCompressed.
func ReadCompressed(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != compressedMagic {
		return nil, fmt.Errorf("graph: bad compressed magic %#x", hdr[0])
	}
	flags, n, m := hdr[1], int(hdr[2]), int(hdr[3])
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	weighted := flags&2 != 0

	g := &Graph{
		Offsets:  make([]uint32, n+1),
		Targets:  make([]VertexID, 0, m),
		Directed: flags&1 != 0,
		Name:     string(nameBytes),
	}
	if weighted {
		g.Weights = make([]Weight, 0, m)
	}
	for v := 0; v < n; v++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		g.Offsets[v+1] = g.Offsets[v] + uint32(deg)
		prev := int64(v)
		for i := uint64(0); i < deg; i++ {
			raw, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			var d int64
			if i == 0 {
				d = prev + unzigzag(raw)
			} else {
				d = prev + int64(raw) + 1
			}
			if d < 0 || d >= int64(n) {
				return nil, fmt.Errorf("graph: decoded target %d out of range", d)
			}
			g.Targets = append(g.Targets, VertexID(d))
			prev = d
			if weighted {
				w, err := readWeight(br)
				if err != nil {
					return nil, err
				}
				g.Weights = append(g.Weights, w)
			}
		}
	}
	if len(g.Targets) != m {
		return nil, fmt.Errorf("graph: decoded %d edges, header says %d", len(g.Targets), m)
	}
	return g, g.Validate()
}

func readWeight(br *bufio.Reader) (Weight, error) {
	raw, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if raw&1 == 0 {
		return Weight(raw >> 1), nil
	}
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return 0, err
	}
	return Weight(math.Float32frombits(binary.LittleEndian.Uint32(b[:]))), nil
}

func zigzag(x int64) uint64 {
	return uint64((x << 1) ^ (x >> 63))
}

func unzigzag(x uint64) int64 {
	return int64(x>>1) ^ -int64(x&1)
}

// CompressionRatio reports compressed adjacency bytes over plain CSR bytes
// for g (diagnostic; the generators' graphs typically compress 2-3x).
func CompressionRatio(g *Graph) (float64, error) {
	payload, err := WriteCompressed(io.Discard, g)
	if err != nil {
		return 0, err
	}
	plain := int64(len(g.Targets)) * 4
	if g.Weighted() {
		plain += int64(len(g.Weights)) * 4
	}
	if plain == 0 {
		return 0, nil
	}
	return float64(payload) / float64(plain), nil
}
