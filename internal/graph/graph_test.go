package graph

import (
	"sort"
	"strings"
	"testing"
)

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph reports |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestPaperExampleStructure(t *testing.T) {
	g := PaperExample()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if g.NumVertices() != 9 {
		t.Fatalf("|V| = %d, want 9", g.NumVertices())
	}
	if g.NumEdges() != 14 {
		t.Fatalf("|E| = %d, want 14", g.NumEdges())
	}
	if !g.Directed || !g.Weighted() {
		t.Fatalf("want directed weighted, got directed=%v weighted=%v", g.Directed, g.Weighted())
	}
	// v3 (index 2) has out-neighbors v4,v5,v6,v7 (indices 3,4,5,6).
	nbrs := g.OutNeighbors(2)
	want := []VertexID{3, 4, 5, 6}
	if len(nbrs) != len(want) {
		t.Fatalf("v3 out-neighbors = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("v3 out-neighbors = %v, want %v", nbrs, want)
		}
	}
	// Weight of v1->v3 is 4.
	_, ws := g.OutEdges(0)
	if len(ws) != 1 || ws[0] != 4 {
		t.Fatalf("w(v1,v3) = %v, want [4]", ws)
	}
	// v3 has the max out-degree (4).
	hub, deg := g.MaxOutDegree()
	if hub != 2 || deg != 4 {
		t.Fatalf("max out-degree = v%d deg %d, want v3 deg 4", hub+1, deg)
	}
}

func TestOutDegreeSumsToNumEdges(t *testing.T) {
	g := PaperExample()
	sum := 0
	for v := 0; v < g.NumVertices(); v++ {
		sum += g.OutDegree(VertexID(v))
	}
	if sum != g.NumEdges() {
		t.Fatalf("sum of out-degrees = %d, want %d", sum, g.NumEdges())
	}
}

func TestReverse(t *testing.T) {
	g := PaperExample()
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatalf("reverse invalid: %v", err)
	}
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatalf("reverse size mismatch")
	}
	// Every edge u->v of g must appear as v->u in r with equal weight.
	type arc struct {
		u, v VertexID
		w    Weight
	}
	collect := func(g *Graph, flip bool) []arc {
		var out []arc
		for v := 0; v < g.NumVertices(); v++ {
			nbrs, ws := g.OutEdges(VertexID(v))
			for i, u := range nbrs {
				a := arc{VertexID(v), u, ws[i]}
				if flip {
					a.u, a.v = a.v, a.u
				}
				out = append(out, a)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].u != out[j].u {
				return out[i].u < out[j].u
			}
			if out[i].v != out[j].v {
				return out[i].v < out[j].v
			}
			return out[i].w < out[j].w
		})
		return out
	}
	fwd := collect(g, false)
	rev := collect(r, true)
	if len(fwd) != len(rev) {
		t.Fatalf("arc count mismatch")
	}
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("arc %d: %v vs reversed %v", i, fwd[i], rev[i])
		}
	}
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	for _, g := range []*Graph{PaperExample(), GenerateRMAT(DefaultRMAT(8, 8, 42))} {
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: double reverse changed |E|", g.Name)
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.OutNeighbors(VertexID(v)), rr.OutNeighbors(VertexID(v))
			if len(a) != len(b) {
				t.Fatalf("%s: v%d degree changed", g.Name, v)
			}
			// Neighbor lists are sorted by construction in Builder; Reverse
			// preserves per-source ordering of the reversed arcs, which is
			// sorted because the outer loop visits sources in order.
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: v%d neighbors %v vs %v", g.Name, v, a, b)
				}
			}
		}
	}
}

func TestTopOutDegreeVertices(t *testing.T) {
	g := PaperExample()
	top := g.TopOutDegreeVertices(3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != 2 { // v3, degree 4
		t.Fatalf("top[0] = v%d, want v3", top[0]+1)
	}
	for i := 1; i < len(top); i++ {
		if g.OutDegree(top[i]) > g.OutDegree(top[i-1]) {
			t.Fatalf("top degrees not descending: %v", top)
		}
	}
	if got := g.TopOutDegreeVertices(100); len(got) != g.NumVertices() {
		t.Fatalf("k>n should clamp, got %d", len(got))
	}
	if got := g.TopOutDegreeVertices(0); got != nil {
		t.Fatalf("k=0 should be nil, got %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph { return PaperExample() }

	g := fresh()
	g.Offsets[3] = g.Offsets[4] + 1
	if err := g.Validate(); err == nil {
		t.Fatal("non-monotone offsets not caught")
	}

	g = fresh()
	g.Targets[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range target not caught")
	}

	g = fresh()
	g.Weights = g.Weights[:3]
	if err := g.Validate(); err == nil {
		t.Fatal("short weights not caught")
	}

	g = fresh()
	g.Offsets[0] = 1
	if err := g.Validate(); err == nil {
		t.Fatal("offsets[0] != 0 not caught")
	}
}

func TestMemoryFootprint(t *testing.T) {
	g := PaperExample()
	want := int64(len(g.Offsets)+len(g.Targets)+len(g.Weights)) * 4
	if got := g.MemoryFootprintBytes(); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestStringContainsBasics(t *testing.T) {
	g := PaperExample()
	s := g.String()
	for _, sub := range []string{"paper-fig3", "directed", "weighted", "|V|=9", "|E|=14"} {
		if !strings.Contains(s, sub) {
			t.Fatalf("String() = %q missing %q", s, sub)
		}
	}
}
