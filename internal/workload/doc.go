// Package workload generates the query workloads of the paper's evaluation
// (§4.1): source vertices sampled with the hop-bin strategy of Qi et al. —
// vertices are divided into disjoint bins by their hop distance to the
// top-4 high-degree vertices, and bins are scanned in rounds, picking one
// random vertex per bin per round, until the requested number of sources is
// selected. This spreads the sources across the whole graph structure. On
// top of the sources it builds homogeneous per-kernel buffers, the mixed
// "Heter" buffer of Table 6, and text-file persistence so a sampled buffer
// can be replayed across methods and sessions (cmd/glign -save-queries).
package workload
