package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// Query buffers persist as plain text, one query per line: "KERNEL source".
// '#' lines are comments. The format lets a sampled workload be pinned in a
// repository and replayed bit-identically across machines — the role the
// original artifact's "input query files" play.

// WriteBuffer writes a query buffer.
func WriteBuffer(w io.Writer, buffer []queries.Query) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# glign query buffer: %d queries\n", len(buffer))
	for _, q := range buffer {
		fmt.Fprintf(bw, "%s %d\n", q.Kernel.Name(), q.Source)
	}
	return bw.Flush()
}

// ReadBuffer parses a query buffer; sources are validated against n when
// n > 0.
func ReadBuffer(r io.Reader, n int) ([]queries.Query, error) {
	sc := bufio.NewScanner(r)
	var buffer []queries.Query
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: line %d: want 'KERNEL source', got %q", lineNo, line)
		}
		k, err := queries.ByName(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		src, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad source: %v", lineNo, err)
		}
		if n > 0 && int(src) >= n {
			return nil, fmt.Errorf("workload: line %d: source %d out of range (n=%d)", lineNo, src, n)
		}
		buffer = append(buffer, queries.Query{Kernel: k, Source: graph.VertexID(src)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return buffer, nil
}

// SaveBuffer writes a buffer to path.
func SaveBuffer(path string, buffer []queries.Query) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBuffer(f, buffer)
}

// LoadBuffer reads a buffer from path (sources validated against n if > 0).
func LoadBuffer(path string, n int) ([]queries.Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBuffer(f, n)
}
