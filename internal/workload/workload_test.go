package workload

import (
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

func setup(t *testing.T) (*graph.Graph, *align.Profile) {
	t.Helper()
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	return g, align.NewProfile(g, 4, 2)
}

func TestSourcesDeterministic(t *testing.T) {
	g, p := setup(t)
	a := Sources(g, p, 64, 7)
	b := Sources(g, p, 64, 7)
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	c := Sources(g, p, 64, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical samples")
	}
}

func TestSourcesCoverHopBins(t *testing.T) {
	g, p := setup(t)
	srcs := Sources(g, p, 128, 9)
	// Round-robin over bins means the sample must span multiple distinct
	// hop distances.
	dists := map[int32]bool{}
	for _, s := range srcs {
		dists[p.ClosestHV[s]] = true
	}
	if len(dists) < 3 {
		t.Fatalf("sources cover only %d hop bins", len(dists))
	}
}

func TestSourcesNoDuplicatesWhenPossible(t *testing.T) {
	g, p := setup(t)
	srcs := Sources(g, p, 100, 10)
	seen := map[graph.VertexID]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatalf("duplicate source %d with %d candidates available", s, g.NumVertices())
		}
		seen[s] = true
	}
}

func TestSourcesMoreThanVertices(t *testing.T) {
	g := graph.PaperExample()
	p := align.NewProfile(g, 2, 1)
	srcs := Sources(g, p, 30, 11)
	if len(srcs) != 30 {
		t.Fatalf("got %d sources, want 30 (with wrap-around)", len(srcs))
	}
}

func TestHomogeneousAndHeter(t *testing.T) {
	g, p := setup(t)
	srcs := Sources(g, p, 32, 12)
	hom := Homogeneous(queries.SSWP, srcs)
	if len(hom) != 32 {
		t.Fatal("homogeneous length")
	}
	for i, q := range hom {
		if q.Kernel.Name() != "SSWP" || q.Source != srcs[i] {
			t.Fatalf("bad query %v", q)
		}
	}
	het := Heter(srcs, 13)
	kinds := map[string]bool{}
	for _, q := range het {
		kinds[q.Kernel.Name()] = true
		if q.Kernel.Name() == "Viterbi" {
			t.Fatal("Viterbi must not appear in Heter")
		}
	}
	if len(kinds) < 3 {
		t.Fatalf("heter mix uses only %d kernel types", len(kinds))
	}
}

func TestBufferFor(t *testing.T) {
	g, p := setup(t)
	srcs := Sources(g, p, 8, 14)
	for _, name := range WorkloadNames() {
		buf, err := BufferFor(name, srcs, 15)
		if err != nil || len(buf) != 8 {
			t.Fatalf("%s: %v (%d)", name, err, len(buf))
		}
	}
	if _, err := BufferFor("nope", srcs, 15); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 6 || names[5] != "Heter" {
		t.Fatalf("names = %v", names)
	}
}
