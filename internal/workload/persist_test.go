package workload

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/glign/glign/internal/queries"
)

func TestBufferRoundTrip(t *testing.T) {
	g, p := setup(t)
	buf := Heter(Sources(g, p, 20, 16), 17)
	var b bytes.Buffer
	if err := WriteBuffer(&b, buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBuffer(&b, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(buf) {
		t.Fatalf("len = %d, want %d", len(got), len(buf))
	}
	for i := range buf {
		if got[i].Kernel.Name() != buf[i].Kernel.Name() || got[i].Source != buf[i].Source {
			t.Fatalf("query %d: %v != %v", i, got[i], buf[i])
		}
	}
}

func TestBufferFileRoundTrip(t *testing.T) {
	g, p := setup(t)
	buf := Homogeneous(queries.SSWP, Sources(g, p, 5, 18))
	path := filepath.Join(t.TempDir(), "buf.txt")
	if err := SaveBuffer(path, buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBuffer(path, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Kernel.Name() != "SSWP" {
		t.Fatalf("got %v", got)
	}
	if _, err := LoadBuffer(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadBufferErrors(t *testing.T) {
	cases := []string{
		"SSSP\n",           // missing source
		"NOPE 3\n",         // unknown kernel
		"SSSP zebra\n",     // bad source
		"SSSP 999999999\n", // out of range for n
	}
	for _, in := range cases {
		if _, err := ReadBuffer(strings.NewReader(in), 100); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
	// Comments and blanks are fine.
	got, err := ReadBuffer(strings.NewReader("# hi\n\nBFS 3\n"), 100)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}
