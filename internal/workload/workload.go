package workload

import (
	"math/rand"
	"sort"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// Sources samples n source vertices from g using the hop-bin strategy.
// prof supplies the hop distances (closestHV); sampling is deterministic in
// seed. Vertices that cannot reach any hub are used only if the reachable
// bins cannot satisfy n.
func Sources(g *graph.Graph, prof *align.Profile, n int, seed int64) []graph.VertexID {
	rng := rand.New(rand.NewSource(seed))
	bins := map[int32][]graph.VertexID{}
	var unreachable []graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		d := prof.ClosestHV[v]
		if d < 0 {
			unreachable = append(unreachable, graph.VertexID(v))
			continue
		}
		bins[d] = append(bins[d], graph.VertexID(v))
	}
	keys := make([]int32, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Shuffle each bin once; rounds then pop from the shuffled order.
	for _, k := range keys {
		b := bins[k]
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	}
	rng.Shuffle(len(unreachable), func(i, j int) {
		unreachable[i], unreachable[j] = unreachable[j], unreachable[i]
	})

	var out []graph.VertexID
	for len(out) < n {
		picked := false
		for _, k := range keys {
			if len(out) >= n {
				break
			}
			if b := bins[k]; len(b) > 0 {
				out = append(out, b[len(b)-1])
				bins[k] = b[:len(b)-1]
				picked = true
			}
		}
		if !picked {
			break
		}
	}
	// Top up from unreachable vertices, then wrap around reusing sources if
	// the graph is smaller than n (duplicates are legitimate queries).
	for len(out) < n && len(unreachable) > 0 {
		out = append(out, unreachable[len(unreachable)-1])
		unreachable = unreachable[:len(unreachable)-1]
	}
	for i := 0; len(out) < n && len(out) > 0; i++ {
		out = append(out, out[i%len(out)])
	}
	return out
}

// Homogeneous builds a buffer of the same kernel over the given sources —
// the paper's per-benchmark query buffers.
func Homogeneous(k queries.Kernel, sources []graph.VertexID) []queries.Query {
	buf := make([]queries.Query, len(sources))
	for i, s := range sources {
		buf[i] = queries.Query{Kernel: k, Source: s}
	}
	return buf
}

// Heter builds the paper's mixed buffer: each query's type is drawn
// uniformly from {BFS, SSSP, SSWP, SSNP} (§4.1).
func Heter(sources []graph.VertexID, seed int64) []queries.Query {
	rng := rand.New(rand.NewSource(seed))
	mix := queries.HeterogeneousSet()
	buf := make([]queries.Query, len(sources))
	for i, s := range sources {
		buf[i] = queries.Query{Kernel: mix[rng.Intn(len(mix))], Source: s}
	}
	return buf
}

// BufferFor returns the buffer for a named workload: any kernel name
// queries.ByName resolves (the five monotone paper kernels, the convergence
// kernels "PageRank"/"LabelProp", "KHOP"/"KHOP<d>") or "Heter".
func BufferFor(name string, sources []graph.VertexID, seed int64) ([]queries.Query, error) {
	if name == "Heter" {
		return Heter(sources, seed), nil
	}
	k, err := queries.ByName(name)
	if err != nil {
		return nil, err
	}
	return Homogeneous(k, sources), nil
}

// WorkloadNames lists the six workloads of the paper's tables (five
// kernels + Heter).
func WorkloadNames() []string {
	names := make([]string, 0, 6)
	for _, k := range queries.All() {
		names = append(names, k.Name())
	}
	return append(names, "Heter")
}
