package stats

import (
	"fmt"
	"math"
	"strings"

	"github.com/glign/glign/internal/par"
)

// parThreshold is the input size above which the folds run as parallel
// reductions on the shared pool. Below it they stay serial, so small inputs
// (every existing caller's table rows) keep their exact summation order and
// bit-identical results.
const parThreshold = 4096

// Mean returns the arithmetic mean (0 for empty input). Large inputs fold
// in parallel via par.ForReduce; the chunked summation order is a function
// of the input length only, so results stay deterministic run to run.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if len(xs) < parThreshold {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	s := par.ForReduce(nil, len(xs), 0, 0, 0.0,
		func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += xs[i]
			}
			return acc
		},
		func(a, b float64) float64 { return a + b })
	return s / float64(len(xs))
}

// logAcc accumulates the log-domain fold behind Geomean: the log sum of the
// positive entries and how many there were.
type logAcc struct {
	sum float64
	n   int
}

// Geomean returns the geometric mean of positive inputs (0 for empty input;
// non-positive entries are skipped, as the paper's geomean rows do for
// missing cells). Large inputs fold in parallel like Mean.
func Geomean(xs []float64) float64 {
	var acc logAcc
	if len(xs) < parThreshold {
		for _, x := range xs {
			if x > 0 {
				acc.sum += math.Log(x)
				acc.n++
			}
		}
	} else {
		acc = par.ForReduce(nil, len(xs), 0, 0, logAcc{},
			func(lo, hi int, a logAcc) logAcc {
				for i := lo; i < hi; i++ {
					if xs[i] > 0 {
						a.sum += math.Log(xs[i])
						a.n++
					}
				}
				return a
			},
			func(a, b logAcc) logAcc { return logAcc{a.sum + b.sum, a.n + b.n} })
	}
	if acc.n == 0 {
		return 0
	}
	return math.Exp(acc.sum / float64(acc.n))
}

// Speedup returns base/x — how many times faster x is than base.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return 0
	}
	return base / x
}

// Table renders rows with a header as aligned plain text, in the style the
// experiment harness prints paper tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowF appends a row formatting each value with the given verb (e.g.
// "%.2f"); strings pass through unchanged.
func (t *Table) AddRowF(label string, verb string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header row first, fields
// quoted when they contain separators), for piping experiment results into
// plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders seconds with adaptive precision ("1.53s", "412ms").
func FormatDuration(seconds float64) string {
	switch {
	case seconds >= 1:
		return fmt.Sprintf("%.2fs", seconds)
	case seconds >= 1e-3:
		return fmt.Sprintf("%.1fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	}
}

// FormatCount renders large counts with suffixes ("1.5M", "2.3B").
func FormatCount(x float64) string {
	switch {
	case x >= 1e9:
		return fmt.Sprintf("%.2fB", x/1e9)
	case x >= 1e6:
		return fmt.Sprintf("%.2fM", x/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.1fK", x/1e3)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}
