// Package stats provides the small numeric and formatting helpers the
// benchmark harness uses: geometric/arithmetic means, speedup ratios, and a
// plain-text table renderer (with CSV output) for reproducing the paper's
// tables on stdout. The geometric mean is the aggregate the paper reports
// for cross-graph speedups (e.g. Figure 11's "geomean" column).
package stats
