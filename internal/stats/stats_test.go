package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean = %v, want 4", got)
	}
	// Non-positive entries skipped.
	if got := Geomean([]float64{0, -3, 2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean with junk = %v, want 4", got)
	}
	if Geomean([]float64{0, -1}) != 0 {
		t.Fatal("all-junk geomean should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("speedup by zero")
	}
}

func TestQuickGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Header: []string{"graph", "x", "y"}}
	tb.AddRow("LJ", "1.0", "2.0")
	tb.AddRowF("TW", "%.2f", 3.14159, 2.71828)
	s := tb.String()
	for _, want := range []string{"== Demo ==", "graph", "LJ", "3.14", "2.72", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", `quo"te`)
	tb.AddRow("plain", "2")
	got := tb.CSV()
	want := "a,b\n\"x,y\",\"quo\"\"te\"\nplain,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		2.5:     "2.50s",
		0.0042:  "4.2ms",
		0.00001: "10µs",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		12:      "12",
		1500:    "1.5K",
		2300000: "2.30M",
		4.2e9:   "4.20B",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Fatalf("FormatCount(%v) = %q, want %q", in, got, want)
		}
	}
}
