package memtrace

// Tracer consumes a stream of memory accesses in program order. Tracing
// runs are single-threaded so the order is deterministic.
type Tracer interface {
	// Access records a read (write=false) or write of size bytes at addr.
	Access(addr int64, size int64, write bool)
}

// Layout assigns non-overlapping base addresses to the data structures of an
// engine, mimicking a heap. Arrays are spaced apart and aligned so that
// distinct structures never share a cache line.
type Layout struct {
	next int64
}

const lineAlign = 4096 // page-align each region

// Place reserves size bytes and returns the region's base address.
func (l *Layout) Place(size int64) int64 {
	base := l.next
	l.next += (size + lineAlign - 1) / lineAlign * lineAlign
	// Leave a guard page between regions.
	l.next += lineAlign
	return base
}

// Total returns the total address space laid out so far.
func (l *Layout) Total() int64 { return l.next }

// CountingTracer counts accesses without modelling a cache; useful in tests
// and as a denominator (total accesses) next to simulated misses.
type CountingTracer struct {
	Reads, Writes int64
	Bytes         int64
}

// Access implements Tracer.
func (c *CountingTracer) Access(addr int64, size int64, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	c.Bytes += size
}
