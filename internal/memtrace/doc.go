// Package memtrace defines the memory-access tracing contract between the
// evaluation engines and the cache simulator. The paper profiles last-level
// cache misses with the perf hardware counters; this reproduction cannot
// assume such hardware, so the engines can instead replay their memory
// behaviour — every frontier, value-array and CSR access, in execution
// order — into a Tracer, and internal/cachesim implements Tracer with a
// set-associative LRU model (see DESIGN.md §3, substitutions).
//
// Tracing is orthogonal to the telemetry layer (internal/telemetry): a
// Tracer sees the address stream of a single-threaded replay, while
// telemetry counts iteration-level quantities on ordinary parallel runs.
package memtrace
