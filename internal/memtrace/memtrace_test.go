package memtrace

import "testing"

func TestLayoutPlacesDisjointRegions(t *testing.T) {
	var l Layout
	a := l.Place(100)
	b := l.Place(5000)
	c := l.Place(1)
	if a != 0 {
		t.Fatalf("first region at %d, want 0", a)
	}
	// Regions must be page-aligned, disjoint, and separated by a guard page.
	if b%4096 != 0 || c%4096 != 0 {
		t.Fatalf("regions not aligned: %d %d", b, c)
	}
	if b < a+100 || c < b+5000 {
		t.Fatalf("regions overlap: %d %d %d", a, b, c)
	}
	if l.Total() < c+1 {
		t.Fatalf("total %d below last region end", l.Total())
	}
}

func TestLayoutGuardPages(t *testing.T) {
	var l Layout
	a := l.Place(4096)
	b := l.Place(8)
	// One full page for region a, plus a guard page.
	if b-a < 2*4096 {
		t.Fatalf("no guard page between regions: %d %d", a, b)
	}
}

func TestCountingTracer(t *testing.T) {
	var c CountingTracer
	c.Access(0, 8, false)
	c.Access(64, 16, true)
	c.Access(128, 4, false)
	if c.Reads != 2 || c.Writes != 1 || c.Bytes != 28 {
		t.Fatalf("counter = %+v", c)
	}
}
