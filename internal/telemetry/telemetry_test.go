package telemetry

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/glign/glign/internal/par"
)

func TestNilSafety(t *testing.T) {
	var c *Collector
	r := c.StartRun("Glign", "Affinity")
	if r != nil {
		t.Fatalf("StartRun on nil collector = %v, want nil", r)
	}
	b := r.StartBatch("Glign-Intra", []int{0, 1}, nil)
	if b != nil {
		t.Fatalf("StartBatch on nil run = %v, want nil", b)
	}
	// None of these may panic.
	b.RecordIteration(IterationStat{Iter: 0, FrontierSize: 1})
	b.Finish(time.Second)
	r.RecordDecision(BatchingDecision{Policy: "Affinity"})
	r.Finish(time.Second)
	if s := c.Snapshot(); s != nil {
		t.Fatalf("Snapshot of nil collector = %v, want nil", s)
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("Snapshot of nil run = %v, want nil", s)
	}
	if s := b.Snapshot(); s != nil {
		t.Fatalf("Snapshot of nil batch = %v, want nil", s)
	}
}

// TestDisabledPathAllocs guards the "compiles to near-zero cost" claim: the
// nil-receiver hooks must not allocate, so the disabled path costs one
// predictable branch per iteration.
func TestDisabledPathAllocs(t *testing.T) {
	var b *BatchTrace
	stat := IterationStat{Iter: 3, FrontierSize: 100, EdgesProcessed: 5000}
	allocs := testing.AllocsPerRun(1000, func() {
		b.RecordIteration(stat)
	})
	if allocs != 0 {
		t.Fatalf("nil BatchTrace.RecordIteration allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCollectorHierarchy(t *testing.T) {
	c := NewCollector()
	r := c.StartRun("Glign", "Affinity")
	r.RecordDecision(BatchingDecision{
		Policy: "Affinity", WindowStart: 0, WindowEnd: 4,
		Order: []int{2, 0, 3, 1}, Arrivals: []int{1, 1, 2, 3},
	})
	b0 := r.StartBatch("Glign-Intra", []int{2, 0}, []int{0, 1})
	b0.RecordIteration(IterationStat{
		Iter: 0, Query: -1, FrontierSize: 1, Mode: ModePush,
		ActiveQueries: 1, InjectedQueries: 1,
		EdgesProcessed: 10, LaneRelaxations: 10, ValueWrites: 4,
	})
	b0.RecordIteration(IterationStat{
		Iter: 1, Query: -1, FrontierSize: 4, Mode: ModePull,
		ActiveQueries: 2, InjectedQueries: 1,
		EdgesProcessed: 40, LaneRelaxations: 80, ValueWrites: 12,
	})
	b0.Finish(250 * time.Millisecond)
	b1 := r.StartBatch("Glign-Intra", []int{3, 1}, nil)
	b1.RecordIteration(IterationStat{
		Iter: 0, Query: -1, FrontierSize: 2, Mode: ModePush,
		ActiveQueries: 2, InjectedQueries: 2,
		EdgesProcessed: 7, LaneRelaxations: 14, ValueWrites: 3,
	})
	b1.Finish(100 * time.Millisecond)
	r.Finish(time.Second)

	m := c.Snapshot()
	if m.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", m.Schema, SchemaVersion)
	}
	if got := m.Counters; got.Runs != 1 || got.Batches != 2 || got.Queries != 4 ||
		got.Iterations != 3 || got.PullIterations != 1 ||
		got.EdgesProcessed != 57 || got.LaneRelaxations != 104 || got.ValueWrites != 19 ||
		got.DelayedQueries != 1 || got.DelayOffsetSum != 1 || got.BatchingDecisions != 1 {
		t.Errorf("counters = %+v", got)
	}
	if len(m.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(m.Runs))
	}
	run := m.Runs[0]
	if run.Method != "Glign" || run.Policy != "Affinity" {
		t.Errorf("run identity = %q/%q", run.Method, run.Policy)
	}
	if run.DurationSeconds != 1.0 {
		t.Errorf("run duration = %v", run.DurationSeconds)
	}
	if len(run.Batches) != 2 || run.Batches[0].Index != 0 || run.Batches[1].Index != 1 {
		t.Fatalf("batches = %+v", run.Batches)
	}
	if got := run.Batches[0]; got.Engine != "Glign-Intra" ||
		len(got.Iterations) != 2 || got.Iterations[1].Mode != ModePull ||
		got.Alignment[1] != 1 || got.Queries[0] != 2 {
		t.Errorf("batch 0 = %+v", got)
	}
	if got, want := run.TotalIterations(), 3; got != want {
		t.Errorf("TotalIterations = %d, want %d", got, want)
	}
	if got, want := run.TotalEdgesProcessed(), int64(57); got != want {
		t.Errorf("TotalEdgesProcessed = %d, want %d", got, want)
	}
	if got, want := run.TotalLaneRelaxations(), int64(104); got != want {
		t.Errorf("TotalLaneRelaxations = %d, want %d", got, want)
	}
	if got, want := run.TotalValueWrites(), int64(19); got != want {
		t.Errorf("TotalValueWrites = %d, want %d", got, want)
	}
	if len(run.Decisions) != 1 || run.Decisions[0].Order[0] != 2 {
		t.Errorf("decisions = %+v", run.Decisions)
	}
}

// TestConcurrentRecording exercises the whole hierarchy from many
// goroutines at once; run under -race this is the layer's thread-safety
// proof (Congra records per-query iterations concurrently in production).
func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	const (
		runs       = 4
		batches    = 3
		goroutines = 8
		iters      = 50
	)
	var wg sync.WaitGroup
	for ri := 0; ri < runs; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := c.StartRun("Glign", "FCFS")
			for bi := 0; bi < batches; bi++ {
				b := r.StartBatch("Glign-Intra", []int{0, 1, 2}, []int{0, 1, 2})
				var bwg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					bwg.Add(1)
					go func(g int) {
						defer bwg.Done()
						for i := 0; i < iters; i++ {
							b.RecordIteration(IterationStat{
								Iter: i, Query: g, FrontierSize: i,
								Mode: ModePush, EdgesProcessed: 2, LaneRelaxations: 3, ValueWrites: 1,
							})
						}
					}(g)
				}
				bwg.Wait()
				b.Finish(time.Millisecond)
			}
			r.RecordDecision(BatchingDecision{Policy: "FCFS"})
			r.Finish(time.Millisecond)
		}()
	}
	// Snapshot concurrently with the writers to prove it is safe mid-run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = c.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	total := int64(runs * batches * goroutines * iters)
	m := c.Snapshot()
	if m.Counters.Iterations != total {
		t.Errorf("iterations = %d, want %d", m.Counters.Iterations, total)
	}
	if m.Counters.EdgesProcessed != 2*total {
		t.Errorf("edges = %d, want %d", m.Counters.EdgesProcessed, 2*total)
	}
	if m.Counters.LaneRelaxations != 3*total {
		t.Errorf("relaxations = %d, want %d", m.Counters.LaneRelaxations, 3*total)
	}
	if m.Counters.Runs != runs || m.Counters.Batches != runs*batches {
		t.Errorf("runs/batches = %d/%d", m.Counters.Runs, m.Counters.Batches)
	}
	var rec int64
	for _, r := range m.Runs {
		rec += int64(r.TotalIterations())
	}
	if rec != total {
		t.Errorf("recorded iteration stats = %d, want %d", rec, total)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 0, 1, 2, 3, 4, 7, 8, 1 << 40, -5} {
		h.Observe(v)
	}
	buckets := h.Snapshot()
	byLo := map[int64]int64{}
	var total int64
	for _, b := range buckets {
		byLo[b.Lo] = b.Count
		total += b.Count
		if b.Lo > b.Hi {
			t.Errorf("bucket lo %d > hi %d", b.Lo, b.Hi)
		}
	}
	if total != 10 {
		t.Fatalf("total observations = %d, want 10", total)
	}
	// 0 and -5 land in [0,0]; 1 in [1,1]; 2,3 in [2,3]; 4,7 in [4,7]; 8 in
	// [8,15]; 1<<40 in [1<<40, 1<<41-1].
	want := map[int64]int64{0: 3, 1: 1, 2: 2, 4: 2, 8: 1, 1 << 40: 1}
	for lo, n := range want {
		if byLo[lo] != n {
			t.Errorf("bucket lo=%d count = %d, want %d", lo, byLo[lo], n)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := NewCollector()
	r := c.StartRun("Ligra-C", "FCFS")
	b := r.StartBatch("Ligra-C", []int{0}, nil)
	b.RecordIteration(IterationStat{Iter: 0, Query: -1, FrontierSize: 1,
		Mode: ModePush, ActiveQueries: 1, EdgesProcessed: 3, LaneRelaxations: 3, ValueWrites: 2})
	b.Finish(time.Millisecond)
	r.Finish(time.Millisecond)

	raw, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Schema != SchemaVersion || len(back.Runs) != 1 ||
		len(back.Runs[0].Batches) != 1 ||
		back.Runs[0].Batches[0].Iterations[0].EdgesProcessed != 3 {
		t.Errorf("round-tripped metrics = %s", raw)
	}
	for _, key := range []string{"frontier_size", "edges_per_iteration", "value_writes", "duration_seconds"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON missing %q: %s", key, raw)
		}
	}
}

func TestPublishRebind(t *testing.T) {
	c1 := NewCollector()
	c1.StartRun("Glign", "FCFS").Finish(time.Millisecond)
	Publish("telemetry_test", c1)
	v := expvar.Get("telemetry_test_counters")
	if v == nil {
		t.Fatal("counters var not published")
	}
	if !strings.Contains(v.String(), `"runs":1`) {
		t.Errorf("counters = %s", v.String())
	}
	// Re-publishing must rebind, not panic.
	c2 := NewCollector()
	Publish("telemetry_test", c2)
	if !strings.Contains(expvar.Get("telemetry_test_counters").String(), `"runs":0`) {
		t.Errorf("rebind failed: %s", expvar.Get("telemetry_test_counters").String())
	}
	if m := expvar.Get("telemetry_test_metrics"); m == nil || !json.Valid([]byte(m.String())) {
		t.Errorf("metrics var invalid: %v", m)
	}
}

func TestObservePoolPopulatesScheduler(t *testing.T) {
	c := NewCollector()
	if s := c.Snapshot(); s.Scheduler != nil {
		t.Fatalf("scheduler section before any observation = %+v, want nil", s.Scheduler)
	}
	p := par.NewPool(2)
	defer p.Close()
	var hit [1 << 12]int64
	p.For(len(hit), 2, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	c.ObservePool(p)
	s := c.Snapshot()
	if s.Scheduler == nil {
		t.Fatal("scheduler section missing after ObservePool")
	}
	if s.Scheduler.Workers != 2 {
		t.Errorf("workers = %d, want 2", s.Scheduler.Workers)
	}
	if s.Scheduler.Jobs < 1 || s.Scheduler.Chunks < 1 {
		t.Errorf("jobs = %d chunks = %d, want both >= 1", s.Scheduler.Jobs, s.Scheduler.Chunks)
	}
	var total int64
	for _, n := range s.Scheduler.ChunksPerWorker {
		total += n
	}
	if total != s.Scheduler.Chunks {
		t.Errorf("chunks_per_worker sums to %d, want %d", total, s.Scheduler.Chunks)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"scheduler"`) {
		t.Errorf("JSON missing scheduler section: %s", raw)
	}
	// Nil-safety on both sides of the call.
	var nilc *Collector
	nilc.ObservePool(p)
	c.ObservePool(nil)
}

func TestObserveServingPopulatesSection(t *testing.T) {
	c := NewCollector()
	if s := c.Snapshot(); s.Serving != nil {
		t.Fatalf("serving section before any observation = %+v, want nil", s.Serving)
	}
	c.ObserveServing(&ServingMetrics{Submitted: 5, Admitted: 4, Batches: 2})
	// Last observation wins: the server republishes its full totals on
	// every batch completion.
	c.ObserveServing(&ServingMetrics{Submitted: 7, Admitted: 6, Batches: 3, QueueDepth: 1})
	s := c.Snapshot()
	if s.Serving == nil {
		t.Fatal("serving section missing after ObserveServing")
	}
	if s.Serving.Submitted != 7 || s.Serving.Batches != 3 || s.Serving.QueueDepth != 1 {
		t.Errorf("serving = %+v, want the last observation", s.Serving)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"serving"`) {
		t.Errorf("JSON missing serving section: %s", raw)
	}
	// Nil-safety on both sides of the call.
	var nilc *Collector
	nilc.ObserveServing(&ServingMetrics{})
	c.ObserveServing(nil)
	if got := c.Snapshot().Serving.Submitted; got != 7 {
		t.Errorf("nil observation overwrote the section: submitted = %d", got)
	}
}

func TestServingSectionTrafficFieldsRoundTrip(t *testing.T) {
	// The PR-6 traffic-shaping fields are additive to glign.telemetry/v1:
	// they must survive a JSON round-trip under their documented names and
	// leave the schema version untouched.
	c := NewCollector()
	c.ObserveServing(&ServingMetrics{
		Submitted:          10,
		Epoch:              3,
		CacheHits:          4,
		CacheMisses:        6,
		CacheEvictions:     1,
		CacheInvalidations: 2,
		CacheSize:          5,
		DedupCoalesced:     2,
		AdmissionReorders:  7,
		Shed:               1,
		ShedByTier:         []int64{1, 0, 0},
	})
	raw, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"epoch":3`, `"cache_hits":4`, `"cache_misses":6`, `"cache_evictions":1`,
		`"cache_invalidations":2`, `"cache_size":5`, `"dedup_coalesced":2`,
		`"admission_reorders":7`, `"shed":1`, `"shed_by_tier":[1,0,0]`,
		`"schema":"glign.telemetry/v1"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("snapshot JSON missing %s: %s", field, raw)
		}
	}
	var back Metrics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	sm := back.Serving
	if sm == nil || sm.CacheHits != 4 || sm.DedupCoalesced != 2 || sm.Epoch != 3 ||
		len(sm.ShedByTier) != 3 || sm.ShedByTier[0] != 1 {
		t.Errorf("round-tripped serving section = %+v", sm)
	}
}
