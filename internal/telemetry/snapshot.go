package telemetry

// SchemaVersion identifies the JSON metrics schema emitted by Snapshot
// (documented field-by-field in OBSERVABILITY.md). Bump on any
// incompatible change so downstream consumers of -metrics-out files can
// dispatch on it.
const SchemaVersion = "glign.telemetry/v1"

// Metrics is the JSON-serializable snapshot of a whole collector.
type Metrics struct {
	Schema     string                  `json:"schema"`
	Counters   CounterSnapshot         `json:"counters"`
	Histograms map[string][]HistBucket `json:"histograms"`
	// Scheduler carries the work-stealing pool counters of the last observed
	// pool (see Collector.ObservePool); omitted when no pool was observed.
	// Additive field — the schema version is unchanged.
	Scheduler *SchedulerMetrics `json:"scheduler,omitempty"`
	// Serving carries the live-serving counters of the last observed server
	// (see Collector.ObserveServing); omitted when no server was observed.
	// Additive field — the schema version is unchanged.
	Serving *ServingMetrics `json:"serving,omitempty"`
	Runs    []*RunMetrics   `json:"runs"`
}

// RunMetrics is the snapshot of one method run (one RunTrace).
type RunMetrics struct {
	Method          string             `json:"method"`
	Policy          string             `json:"policy,omitempty"`
	DurationSeconds float64            `json:"duration_seconds"`
	Batches         []*BatchMetrics    `json:"batches"`
	Decisions       []BatchingDecision `json:"batching_decisions,omitempty"`
}

// BatchMetrics is the snapshot of one evaluation batch (one BatchTrace).
type BatchMetrics struct {
	// Index is the batch's position in the run's evaluation order.
	Index int `json:"index"`
	// Engine is the core.Engine that evaluated the batch.
	Engine string `json:"engine"`
	// Queries lists buffer indices in batch-lane order.
	Queries []int `json:"queries"`
	// Alignment is the delayed-start vector applied (empty: all zeros).
	Alignment []int `json:"alignment,omitempty"`
	// DurationSeconds is the batch's evaluation wall time.
	DurationSeconds float64 `json:"duration_seconds"`
	// Iterations is the per-iteration timeline, in execution order.
	Iterations []IterationStat `json:"iterations"`
}

// Snapshot deep-copies the collector's current state into its JSON form.
// Returns nil on a nil collector. Safe to call while runs are in flight;
// in-flight batches appear with the iterations recorded so far.
func (c *Collector) Snapshot() *Metrics {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	runs := append([]*RunTrace(nil), c.runs...)
	sched := c.sched
	serving := c.serving
	c.mu.Unlock()
	m := &Metrics{
		Schema:   SchemaVersion,
		Counters: c.Counters.Snapshot(),
		Histograms: map[string][]HistBucket{
			"frontier_size":       c.FrontierSizes.Snapshot(),
			"edges_per_iteration": c.EdgesPerIteration.Snapshot(),
		},
		Scheduler: sched,
		Serving:   serving,
		Runs:      make([]*RunMetrics, 0, len(runs)),
	}
	for _, r := range runs {
		m.Runs = append(m.Runs, r.Snapshot())
	}
	return m
}

// Snapshot deep-copies the run's current state (nil on a nil trace).
func (r *RunTrace) Snapshot() *RunMetrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	batches := append([]*BatchTrace(nil), r.batches...)
	out := &RunMetrics{
		Method:          r.method,
		Policy:          r.policy,
		DurationSeconds: r.duration.Seconds(),
		Decisions:       append([]BatchingDecision(nil), r.decisions...),
	}
	r.mu.Unlock()
	out.Batches = make([]*BatchMetrics, 0, len(batches))
	for _, b := range batches {
		out.Batches = append(out.Batches, b.Snapshot())
	}
	return out
}

// Snapshot deep-copies the batch's current state (nil on a nil trace).
func (b *BatchTrace) Snapshot() *BatchMetrics {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return &BatchMetrics{
		Index:           b.index,
		Engine:          b.engine,
		Queries:         append([]int(nil), b.queries...),
		Alignment:       append([]int(nil), b.alignment...),
		DurationSeconds: b.duration.Seconds(),
		Iterations:      append([]IterationStat(nil), b.iterations...),
	}
}

// TotalIterations sums recorded iteration records over all batches.
func (r *RunMetrics) TotalIterations() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b.Iterations)
	}
	return n
}

// TotalEdgesProcessed sums per-iteration edge visits over all batches.
func (r *RunMetrics) TotalEdgesProcessed() int64 {
	var n int64
	for _, b := range r.Batches {
		for _, it := range b.Iterations {
			n += it.EdgesProcessed
		}
	}
	return n
}

// TotalLaneRelaxations sums per-iteration relaxation attempts.
func (r *RunMetrics) TotalLaneRelaxations() int64 {
	var n int64
	for _, b := range r.Batches {
		for _, it := range b.Iterations {
			n += it.LaneRelaxations
		}
	}
	return n
}

// TotalValueWrites sums per-iteration successful relaxations.
func (r *RunMetrics) TotalValueWrites() int64 {
	var n int64
	for _, b := range r.Batches {
		for _, it := range b.Iterations {
			n += it.ValueWrites
		}
	}
	return n
}
