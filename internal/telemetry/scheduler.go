package telemetry

import "github.com/glign/glign/internal/par"

// SchedulerMetrics is the work-stealing pool section of the metrics
// snapshot: the pool's monotone scheduling counters plus a load-imbalance
// histogram over the per-worker chunk counts. Counters are cumulative over
// the pool's lifetime, so a run on the shared par.Default pool reports the
// process-wide picture; inject a dedicated pool (Config.Pool) to attribute
// the section to one run.
type SchedulerMetrics struct {
	// Workers is the pool's long-lived background worker count.
	Workers int `json:"workers"`
	// Jobs counts dispatched parallel loops; InlineRuns the loops that ran
	// inline on the caller (single worker or sub-grain totals).
	Jobs       int64 `json:"jobs"`
	InlineRuns int64 `json:"inline_runs"`
	// Chunks counts executed chunks; Steals the subset claimed from another
	// participant's segment; Parks how often a worker went back to waiting.
	Chunks int64 `json:"chunks"`
	Steals int64 `json:"steals"`
	Parks  int64 `json:"parks"`
	// ChunksPerWorker breaks Chunks down by executor (index 0 aggregates
	// submitting goroutines, index i >= 1 is pool worker i).
	ChunksPerWorker []int64 `json:"chunks_per_worker"`
	// ChunkImbalance is the power-of-two histogram of ChunksPerWorker — a
	// wide spread means the stealing failed to level the load.
	ChunkImbalance []HistBucket `json:"chunk_imbalance"`
	// ChunkImbalanceRatio condenses the histogram to one figure (max over
	// mean chunks among active participants; 1.0 = perfectly level) — the
	// same statistic the perf gate's bench reports carry per cell. Additive
	// to glign.telemetry/v1.
	ChunkImbalanceRatio float64 `json:"chunk_imbalance_ratio"`
}

// ObservePool snapshots the scheduling counters of p into the collector's
// scheduler section (last observation wins — callers observe once per run,
// after the run's loops have joined). Nil-safe on both sides: a nil
// collector means telemetry is disabled, a nil pool means nothing to record.
func (c *Collector) ObservePool(p *par.Pool) {
	if c == nil {
		return
	}
	if p == nil {
		return
	}
	s := p.Stats()
	var imb Histogram
	for _, n := range s.ChunksPerWorker {
		imb.Observe(n)
	}
	sm := &SchedulerMetrics{
		Workers:             s.Workers,
		Jobs:                s.Jobs,
		InlineRuns:          s.InlineRuns,
		Chunks:              s.Chunks,
		Steals:              s.Steals,
		Parks:               s.Parks,
		ChunksPerWorker:     s.ChunksPerWorker,
		ChunkImbalance:      imb.Snapshot(),
		ChunkImbalanceRatio: s.ImbalanceRatio(),
	}
	c.mu.Lock()
	c.sched = sm
	c.mu.Unlock()
}
