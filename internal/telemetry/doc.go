// Package telemetry is the runtime observability layer: low-overhead,
// optionally-enabled metrics threaded through the hot paths of every
// evaluation engine (internal/engine, internal/core, internal/baselines),
// the batching policies (internal/sched), and the method compositions
// (internal/systems).
//
// The hierarchy mirrors the execution structure:
//
//	Collector            one per process / Runtime / bench invocation
//	└── RunTrace         one per method run (systems.Run over a buffer)
//	    ├── BatchingDecision   per scheduler window (paper §3.4, Figure 10)
//	    └── BatchTrace         one per evaluation batch
//	        └── IterationStat  one per global iteration
//
// Each IterationStat carries the quantities the paper's Figures 6-9 reason
// about: unified frontier size and traversal direction (push/pull),
// active-query count, edges processed, per-lane relaxation attempts, and
// successful value-array writes. Batch traces additionally record the
// delayed-start alignment vector applied (Definition 3.3) and the batch
// composition the scheduler chose (§3.4).
//
// Cost model: when telemetry is disabled every hook is a method on a nil
// pointer that returns immediately, and engines pre-aggregate per worker
// and per iteration, so an enabled collector sees O(iterations) updates,
// never O(edges). OBSERVABILITY.md documents the JSON schema
// (SchemaVersion) and measured overhead; expvar.go exports live counters
// for the -listen endpoint of cmd/glign.
package telemetry
