package telemetry

import (
	"sync"
	"time"
)

// Collector is the root of the telemetry hierarchy: one Collector outlives
// many method runs (a whole glign-bench invocation, or the lifetime of a
// Runtime), accumulating global counters, histograms, and one RunTrace per
// systems.Run call. All methods are safe for concurrent use, and all methods
// on a nil *Collector (and on the nil traces it hands out) are no-ops, so
// instrumented code needs no enabled/disabled branches beyond a nil check.
type Collector struct {
	// Counters aggregates monotone totals across every run the collector
	// observed. Fields are atomic; read them with Load or via Snapshot.
	Counters Counters
	// FrontierSizes observes the unified frontier size entering every global
	// iteration (the distribution behind paper Figure 7).
	FrontierSizes Histogram
	// EdgesPerIteration observes edges processed per global iteration.
	EdgesPerIteration Histogram

	mu      sync.Mutex
	runs    []*RunTrace
	sched   *SchedulerMetrics
	serving *ServingMetrics
}

// NewCollector returns an empty enabled collector.
func NewCollector() *Collector { return &Collector{} }

// StartRun opens a trace for one method run (one systems.Run call: a whole
// query buffer evaluated under one method). Returns nil when c is nil.
func (c *Collector) StartRun(method, policy string) *RunTrace {
	if c == nil {
		return nil
	}
	r := &RunTrace{c: c, method: method, policy: policy}
	c.Counters.Runs.Add(1)
	c.mu.Lock()
	c.runs = append(c.runs, r)
	c.mu.Unlock()
	return r
}

// RunTrace accumulates the telemetry of one method run: its batches (in
// evaluation order) and the scheduler decisions that formed them.
type RunTrace struct {
	c              *Collector
	method, policy string

	mu        sync.Mutex
	batches   []*BatchTrace
	decisions []BatchingDecision
	duration  time.Duration
}

// StartBatch opens a trace for one evaluation batch. queries are buffer
// indices in batch order; alignment is the delayed-start vector (nil when
// every query starts at iteration 0). Returns nil when r is nil.
func (r *RunTrace) StartBatch(engine string, queryIdx, alignment []int) *BatchTrace {
	if r == nil {
		return nil
	}
	b := &BatchTrace{
		c:         r.c,
		engine:    engine,
		queries:   append([]int(nil), queryIdx...),
		alignment: append([]int(nil), alignment...),
	}
	c := r.c
	c.Counters.Batches.Add(1)
	c.Counters.Queries.Add(int64(len(queryIdx)))
	for _, a := range alignment {
		if a > 0 {
			c.Counters.DelayedQueries.Add(1)
			c.Counters.DelayOffsetSum.Add(int64(a))
		}
	}
	r.mu.Lock()
	b.index = len(r.batches)
	r.batches = append(r.batches, b)
	r.mu.Unlock()
	return b
}

// SetPolicy names the scheduling policy once it is known (the trace is
// opened before the method plan is resolved, so the policy name arrives
// late). No-op on nil.
func (r *RunTrace) SetPolicy(policy string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.policy = policy
	r.mu.Unlock()
}

// RecordDecision appends one scheduler batching decision (no-op on nil).
func (r *RunTrace) RecordDecision(d BatchingDecision) {
	if r == nil {
		return
	}
	r.c.Counters.BatchingDecisions.Add(1)
	r.mu.Lock()
	r.decisions = append(r.decisions, d)
	r.mu.Unlock()
}

// Finish stamps the run's total wall time (no-op on nil).
func (r *RunTrace) Finish(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.duration = d
	r.mu.Unlock()
}

// BatchTrace accumulates the per-iteration timeline of one evaluation batch.
type BatchTrace struct {
	c         *Collector
	index     int
	engine    string
	queries   []int
	alignment []int

	mu         sync.Mutex
	iterations []IterationStat
	duration   time.Duration
}

// RecordIteration appends one global-iteration record and feeds the
// collector's global counters and histograms. Engines call it once per
// global iteration (or once per per-query iteration for sequential
// engines, with Query >= 0), never per edge, so the mutex is uncontended
// relative to the work it brackets. No-op on nil.
func (b *BatchTrace) RecordIteration(s IterationStat) {
	if b == nil {
		return
	}
	c := b.c
	c.Counters.Iterations.Add(1)
	c.Counters.EdgesProcessed.Add(s.EdgesProcessed)
	c.Counters.LaneRelaxations.Add(s.LaneRelaxations)
	c.Counters.ValueWrites.Add(s.ValueWrites)
	if s.Mode == ModePull {
		c.Counters.PullIterations.Add(1)
	}
	c.FrontierSizes.Observe(int64(s.FrontierSize))
	c.EdgesPerIteration.Observe(s.EdgesProcessed)
	b.mu.Lock()
	b.iterations = append(b.iterations, s)
	b.mu.Unlock()
}

// Finish stamps the batch's evaluation time (no-op on nil).
func (b *BatchTrace) Finish(d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.duration = d
	b.mu.Unlock()
}

// Traversal direction of a global iteration.
const (
	// ModePush marks a sparse (push-model EdgeMap) iteration.
	ModePush = "push"
	// ModePull marks a dense iteration run in pull mode over the reversed
	// graph (the direction optimization of internal/core's hybrid engine).
	ModePull = "pull"
	// ModeJacobi marks one all-vertices round of an iterate-to-convergence
	// (non-monotone) evaluation — every vertex recomputes from its
	// in-neighbors' previous-round values.
	ModeJacobi = "jacobi"
)

// IterationStat is one global-iteration record — the per-iteration
// quantities the paper's Figures 6-9 reason about. Counters are deltas for
// this iteration, not cumulative totals.
type IterationStat struct {
	// Iter is the global iteration number within the batch (0-based).
	Iter int `json:"iter"`
	// Query is the batch lane this record belongs to for engines that
	// evaluate queries one at a time (Ligra-S, Congra); -1 for batch
	// engines whose iterations span all lanes.
	Query int `json:"query"`
	// FrontierSize is |frontier| entering the iteration (the unified
	// frontier for batch engines, the per-query frontier otherwise).
	FrontierSize int `json:"frontier_size"`
	// Mode is ModePush, ModePull or ModeJacobi.
	Mode string `json:"mode"`
	// ActiveQueries counts the queries whose delayed start has arrived
	// (alignment offset <= Iter).
	ActiveQueries int `json:"active_queries"`
	// InjectedQueries counts the queries whose delayed start arrived
	// exactly at this iteration.
	InjectedQueries int `json:"injected_queries"`
	// EdgesProcessed counts edge visits this iteration (per active vertex,
	// per out-edge — in pull mode, per in-edge of a frontier member).
	EdgesProcessed int64 `json:"edges_processed"`
	// LaneRelaxations counts per-query relaxation attempts on edges.
	LaneRelaxations int64 `json:"lane_relaxations"`
	// ValueWrites counts successful relaxations (value-array improvements).
	ValueWrites int64 `json:"value_writes"`
}

// BatchingDecision records one scheduler decision: how one batching window
// of the buffer was ranked into evaluation order (paper §3.4 / Figure 10).
type BatchingDecision struct {
	// Policy is the scheduling policy that made the decision ("Affinity",
	// "iBFS").
	Policy string `json:"policy"`
	// WindowStart/WindowEnd delimit the buffer slice [start, end) the
	// policy was allowed to reorder (the batching window B_w).
	WindowStart int `json:"window_start"`
	WindowEnd   int `json:"window_end"`
	// Order lists buffer indices in the ranked order the policy chose;
	// consecutive runs of batch-size indices form the evaluation batches.
	Order []int `json:"order"`
	// Arrivals[i] is the estimated heavy-iteration arrival time
	// (closestHV) of the query at Order[i], when the policy ranks by it.
	Arrivals []int `json:"arrival_estimates,omitempty"`
}
