package telemetry

// ServingMetrics is the live-serving section of the metrics snapshot
// (internal/serve): admission outcomes, flush triggers, and the admission
// latency / batch occupancy distributions of one Server. Counters are
// cumulative over the server's lifetime; QueueDepth is a gauge sampled at
// observation time. The section is additive to glign.telemetry/v1 — the
// schema version is unchanged.
type ServingMetrics struct {
	// Submitted counts Submit calls; Admitted the subset that entered the
	// queue; RejectedFull / RejectedClosed the typed rejections.
	Submitted      int64 `json:"submitted"`
	Admitted       int64 `json:"admitted"`
	RejectedFull   int64 `json:"rejected_full"`
	RejectedClosed int64 `json:"rejected_closed"`
	// Canceled counts queries whose context was canceled while queued;
	// DeadlineMisses those whose deadline expired before batching. Both are
	// resolved at batch-formation time, never mid-execution.
	Canceled       int64 `json:"canceled"`
	DeadlineMisses int64 `json:"deadline_misses"`
	// Completed counts queries that received result vectors.
	Completed int64 `json:"completed"`
	// Batches counts executed batches; the three flush counters attribute
	// every batch-formation event to its trigger (window timer expiry, size
	// cap reached, or shutdown drain).
	Batches       int64 `json:"batches"`
	WindowFlushes int64 `json:"window_flushes"`
	SizeFlushes   int64 `json:"size_flushes"`
	DrainFlushes  int64 `json:"drain_flushes"`
	// QueueDepth is the admitted-but-undispatched population at observation
	// time (the quantity bounded by the server's queue capacity).
	QueueDepth int64 `json:"queue_depth"`
	// Epoch is the server's current data epoch (a gauge; bumped by
	// Server.BumpEpoch). Cached results are valid only for the epoch they
	// were computed at.
	Epoch int64 `json:"epoch"`
	// CacheHits counts submissions answered from the source+kernel-keyed
	// result cache without executing; CacheMisses those that consulted the
	// cache and fell through to the queue (or to dedup coalescing).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheEvictions counts entries displaced by the LRU capacity bound;
	// CacheInvalidations entries dropped at lookup because their epoch no
	// longer matched the server's; CacheSize is the entry count at
	// observation time (a gauge).
	CacheEvictions     int64 `json:"cache_evictions"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	CacheSize          int64 `json:"cache_size"`
	// DedupCoalesced counts submissions that joined an already-pending
	// identical query's slot instead of occupying their own (one executed
	// batch slot fans its result out to every coalesced waiter).
	DedupCoalesced int64 `json:"dedup_coalesced"`
	// AdmissionReorders counts queries the affinity-aware admission ranking
	// displaced from their arrival position when ordering the pending queue
	// (counted per ranking pass).
	AdmissionReorders int64 `json:"admission_reorders"`
	// Shed counts queued queries sacrificed to admit a higher-priority
	// arrival at capacity; ShedByTier breaks the total down by the victim's
	// tier (index 0 low, 1 normal, 2 high).
	Shed       int64   `json:"shed"`
	ShedByTier []int64 `json:"shed_by_tier,omitempty"`
	// AdmissionWaitNs is the power-of-two histogram of per-query admission
	// latency (admit -> batch formation), in nanoseconds on the server's
	// clock; BatchOccupancy the histogram of executed batch sizes.
	AdmissionWaitNs []HistBucket `json:"admission_wait_ns,omitempty"`
	BatchOccupancy  []HistBucket `json:"batch_occupancy,omitempty"`
}

// ObserveServing installs sm as the collector's serving section (last
// observation wins — a server observes after every batch and at Close, so
// the snapshot tracks the live totals). Nil-safe on both sides: a nil
// collector means telemetry is disabled, a nil sm means nothing to record.
func (c *Collector) ObserveServing(sm *ServingMetrics) {
	if c == nil {
		return
	}
	if sm == nil {
		return
	}
	c.mu.Lock()
	c.serving = sm
	c.mu.Unlock()
}
