package telemetry

import (
	"expvar"
	"sync"
)

var publishMu sync.Mutex

// Publish exports the collector under two expvar names served at
// /debug/vars: "<name>_counters" (the flat counter totals, cheap to poll)
// and "<name>_metrics" (the full Snapshot, including per-iteration
// timelines). Re-publishing the same name rebinds it to the new collector
// instead of panicking as expvar.Publish would.
func Publish(name string, c *Collector) {
	publishMu.Lock()
	defer publishMu.Unlock()
	bind(name+"_counters", func() interface{} {
		if c == nil {
			return nil
		}
		return c.Counters.Snapshot()
	})
	bind(name+"_metrics", func() interface{} { return c.Snapshot() })
}

func bind(name string, f func() interface{}) {
	if expvar.Get(name) != nil {
		// Already published (an earlier Publish or a test re-run): expvar
		// vars are funcs, so rebinding requires replacing the func value.
		// expvar offers no unpublish; wrap in an indirection we own.
		if r, ok := expvar.Get(name).(*rebindable); ok {
			r.mu.Lock()
			r.f = f
			r.mu.Unlock()
			return
		}
		return
	}
	expvar.Publish(name, &rebindable{f: f})
}

// rebindable is an expvar.Var whose underlying func can be swapped.
type rebindable struct {
	mu sync.Mutex
	f  func() interface{}
}

func (r *rebindable) String() string {
	r.mu.Lock()
	f := r.f
	r.mu.Unlock()
	v := expvar.Func(f)
	return v.String()
}
