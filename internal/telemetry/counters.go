package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counters are the collector's monotone global totals. Every field is
// atomic: hot paths pre-aggregate locally (per worker, per iteration) and
// add deltas, so a field sees one Add per iteration, not per edge.
type Counters struct {
	// Runs counts StartRun calls (method runs over whole buffers).
	Runs atomic.Int64
	// Batches counts evaluation batches; Queries counts the queries they
	// carried (a query re-counted if evaluated under several methods).
	Batches atomic.Int64
	Queries atomic.Int64
	// Iterations counts recorded global iterations; PullIterations the
	// subset that ran in pull (dense) mode.
	Iterations     atomic.Int64
	PullIterations atomic.Int64
	// EdgesProcessed / LaneRelaxations / ValueWrites aggregate the
	// iteration deltas (see IterationStat for their units).
	EdgesProcessed  atomic.Int64
	LaneRelaxations atomic.Int64
	ValueWrites     atomic.Int64
	// DelayedQueries counts queries given a nonzero delayed-start offset;
	// DelayOffsetSum sums those offsets (global iterations of delay).
	DelayedQueries atomic.Int64
	DelayOffsetSum atomic.Int64
	// BatchingDecisions counts recorded scheduler window decisions.
	BatchingDecisions atomic.Int64
}

// CounterSnapshot is the JSON form of Counters.
type CounterSnapshot struct {
	Runs              int64 `json:"runs"`
	Batches           int64 `json:"batches"`
	Queries           int64 `json:"queries"`
	Iterations        int64 `json:"iterations"`
	PullIterations    int64 `json:"pull_iterations"`
	EdgesProcessed    int64 `json:"edges_processed"`
	LaneRelaxations   int64 `json:"lane_relaxations"`
	ValueWrites       int64 `json:"value_writes"`
	DelayedQueries    int64 `json:"delayed_queries"`
	DelayOffsetSum    int64 `json:"delay_offset_sum"`
	BatchingDecisions int64 `json:"batching_decisions"`
}

// Snapshot atomically reads every counter.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Runs:              c.Runs.Load(),
		Batches:           c.Batches.Load(),
		Queries:           c.Queries.Load(),
		Iterations:        c.Iterations.Load(),
		PullIterations:    c.PullIterations.Load(),
		EdgesProcessed:    c.EdgesProcessed.Load(),
		LaneRelaxations:   c.LaneRelaxations.Load(),
		ValueWrites:       c.ValueWrites.Load(),
		DelayedQueries:    c.DelayedQueries.Load(),
		DelayOffsetSum:    c.DelayOffsetSum.Load(),
		BatchingDecisions: c.BatchingDecisions.Load(),
	}
}

// Histogram is a lock-free histogram over non-negative int64 observations
// with power-of-two buckets: bucket 0 holds the value 0, bucket k holds
// [2^(k-1), 2^k). Sixty-five buckets cover the whole int64 range, so
// Observe never needs bounds checks beyond the negative clamp.
type Histogram struct {
	buckets [65]atomic.Int64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistBucket is one non-empty histogram bucket: Count observations fell in
// [Lo, Hi].
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Snapshot returns the non-empty buckets in ascending order.
func (h *Histogram) Snapshot() []HistBucket {
	var out []HistBucket
	for k := range h.buckets {
		n := h.buckets[k].Load()
		if n == 0 {
			continue
		}
		b := HistBucket{Count: n}
		switch {
		case k == 0:
			// [0, 0]
		case k >= 63:
			b.Lo = int64(1) << 62
			b.Hi = int64(^uint64(0) >> 1) // MaxInt64
			if k == 64 {
				// Only reachable by values with bit 63 set, i.e. never for
				// non-negative int64; fold into the top bucket regardless.
				b.Lo = b.Hi
			}
		default:
			b.Lo = int64(1) << (k - 1)
			b.Hi = int64(1)<<k - 1
		}
		out = append(out, b)
	}
	return out
}
