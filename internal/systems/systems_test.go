package systems

import (
	"math/rand"
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/queries"
)

func buffer(g *graph.Graph, n int, seed int64) []queries.Query {
	rng := rand.New(rand.NewSource(seed))
	kernels := queries.All()
	buf := make([]queries.Query, n)
	for i := range buf {
		buf[i] = queries.Query{
			Kernel: kernels[rng.Intn(len(kernels))],
			Source: graph.VertexID(rng.Intn(g.NumVertices())),
		}
	}
	return buf
}

// Every method must produce exactly the per-query reference results,
// regardless of batching, alignment, or engine.
func TestAllMethodsCorrect(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	buf := buffer(g, 40, 41)
	want := make([][]queries.Value, len(buf))
	for i, q := range buf {
		want[i] = engine.ReferenceRun(g, q)
	}
	methods := append(AllMethods(), IBFS, QueryParallel)
	for _, m := range methods {
		res, err := Run(m, g, buf, Config{BatchSize: 8, Workers: 4, KeepValues: true})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for i := range buf {
			got := res.Values[i]
			if got == nil {
				t.Fatalf("%s: query %d missing from results", m, i)
			}
			for v := range want[i] {
				if got[v] != want[i][v] {
					t.Fatalf("%s: query %d (%s) v%d = %v, want %v",
						m, i, buf[i], v, got[v], want[i][v])
				}
			}
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Run("Nope", g, buffer(g, 2, 1), Config{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestEmptyBuffer(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Run(GlignIntra, g, nil, Config{}); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestGlignInterRecordsAlignments(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	buf := buffer(g, 16, 42)
	res, err := Run(GlignInter, g, buf, Config{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) != len(res.Batches) {
		t.Fatal("alignment bookkeeping broken")
	}
	for bi, I := range res.Alignments {
		if I == nil {
			t.Fatalf("batch %d: Glign-Inter must record an alignment vector", bi)
		}
		minV := I[0]
		for _, x := range I {
			if x < 0 {
				t.Fatalf("negative alignment %v", I)
			}
			if x < minV {
				minV = x
			}
		}
		if minV != 0 {
			t.Fatalf("alignment %v not normalized", I)
		}
	}
	// Intra must not align.
	res, err = Run(GlignIntra, g, buf, Config{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, I := range res.Alignments {
		if I != nil {
			t.Fatal("Glign-Intra must not use alignment vectors")
		}
	}
}

func TestProfileReuse(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	prof := align.NewProfile(g, 4, 2)
	buf := buffer(g, 8, 43)
	// Passing a prebuilt profile must work and not rebuild it (cannot
	// observe directly; at least exercise the path).
	if _, err := Run(Glign, g, buf, Config{BatchSize: 4, Profile: prof, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestNeedsProfile(t *testing.T) {
	for _, m := range []string{GlignInter, GlignBatch, Glign} {
		if !NeedsProfile(m) {
			t.Fatalf("%s should need a profile", m)
		}
	}
	for _, m := range []string{LigraS, LigraC, Krill, GraphM, GlignIntra, IBFS} {
		if NeedsProfile(m) {
			t.Fatalf("%s should not need a profile", m)
		}
	}
}

func TestTracerThreadedThrough(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	buf := buffer(g, 8, 44)
	var ct memtrace.CountingTracer
	if _, err := Run(GlignIntra, g, buf, Config{BatchSize: 4, Tracer: &ct}); err != nil {
		t.Fatal(err)
	}
	if ct.Reads == 0 {
		t.Fatal("tracer unused")
	}
}

func TestStatsAggregation(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	buf := buffer(g, 12, 45)
	res, err := Run(GlignIntra, g, buf, Config{BatchSize: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(res.Batches))
	}
	if res.TotalIterations == 0 || res.EdgesProcessed == 0 || res.Duration <= 0 {
		t.Fatalf("stats not aggregated: %+v", res)
	}
	// Oblivious evaluation relaxes at least one lane per edge visit.
	if res.LaneRelaxations < res.EdgesProcessed {
		t.Fatalf("lane relaxations %d < edges %d", res.LaneRelaxations, res.EdgesProcessed)
	}
}
