package systems

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/baselines"
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/sched"
	"github.com/glign/glign/internal/telemetry"
)

// Method names.
const (
	LigraS        = "Ligra-S"
	LigraC        = "Ligra-C"
	GraphM        = "GraphM"
	Krill         = "Krill"
	GlignIntra    = "Glign-Intra"
	GlignInter    = "Glign-Inter"
	GlignBatch    = "Glign-Batch"
	Glign         = "Glign"
	IBFS          = "iBFS"
	QueryParallel = "Query-Parallel"
	Congra        = "Congra"
)

// AllMethods lists every method in the paper's presentation order.
func AllMethods() []string {
	return []string{LigraS, LigraC, GraphM, Krill, GlignIntra, GlignInter, GlignBatch, Glign}
}

// Config parameterizes a method run.
type Config struct {
	// BatchSize is |B|, the number of queries evaluated concurrently
	// (paper default: 64).
	BatchSize int
	// Workers bounds parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Pool is the work-stealing scheduler every parallel loop of the run
	// submits to; nil means the shared par.Default pool. Injecting a
	// dedicated pool isolates the run's scheduling and makes the scheduler
	// telemetry section (steals, imbalance) attributable to this run alone.
	Pool *par.Pool
	// Window is the affinity-batching window B_w (<= 0: whole buffer).
	Window int
	// Profile supplies closestHV; required by Glign-Inter, Glign-Batch and
	// Glign, ignored otherwise. Run builds it on demand when nil.
	Profile *align.Profile
	// Tracer, when set, receives the memory accesses of every batch (one
	// shared simulated cache across the whole buffer run).
	Tracer memtrace.Tracer
	// KeepValues retains per-query result vectors for verification
	// (memory-heavy: n*|buffer| float64s).
	KeepValues bool
	// DirectionOptimized enables push/pull hybrid iterations in the
	// query-oblivious engine (an extension beyond the paper; requires a
	// profile, whose reversed graph is reused). Ignored by other engines
	// and by traced runs.
	DirectionOptimized bool
	// Telemetry, when non-nil, collects per-iteration engine records and
	// scheduler decisions for this run (see internal/telemetry). Nil
	// disables collection at near-zero cost.
	Telemetry *telemetry.Collector
}

// Result aggregates a method run over a whole buffer.
type Result struct {
	Method   string
	Duration time.Duration
	// Batches[i] lists buffer indices of batch i, in evaluation order.
	Batches [][]int
	// BatchDurations[i] is the evaluation time of batch i. A query's
	// latency under FCFS arrival is the prefix sum up to and including its
	// batch — the latency accounting the paper leaves as future work
	// (§4.1).
	BatchDurations []time.Duration
	// Alignments[i] is the alignment vector used for batch i (nil = zeros).
	Alignments [][]int
	// TotalIterations sums global iterations over batches.
	TotalIterations int
	// EdgesProcessed / LaneRelaxations / ValueWrites aggregate engine
	// counters.
	EdgesProcessed  int64
	LaneRelaxations int64
	ValueWrites     int64
	// Values[bufferIdx] is the query's full result vector when
	// Config.KeepValues is set.
	Values map[int][]queries.Value
	// Telemetry is the run's trace when Config.Telemetry was set (snapshot
	// it for the per-iteration timelines), nil otherwise.
	Telemetry *telemetry.RunTrace
}

// methodPlan is the (policy, engine, aligned) decomposition of a method.
type methodPlan struct {
	policy  sched.Policy
	engine  core.Engine
	aligned bool
}

func planFor(method string, g *graph.Graph, prof *align.Profile, cfg Config, run *telemetry.RunTrace) (methodPlan, error) {
	fcfs := sched.FCFS{}
	switch method {
	case LigraS:
		return methodPlan{fcfs, core.LigraS, false}, nil
	case LigraC:
		return methodPlan{fcfs, core.LigraC, false}, nil
	case GraphM:
		return methodPlan{fcfs, baselines.GraphM{}, false}, nil
	case Krill:
		return methodPlan{fcfs, core.Krill, false}, nil
	case GlignIntra:
		return methodPlan{fcfs, core.GlignIntra, false}, nil
	case GlignInter:
		return methodPlan{fcfs, core.GlignIntra, true}, nil
	case GlignBatch:
		return methodPlan{sched.Affinity{Profile: prof, Window: cfg.Window, Telemetry: run, Workers: cfg.Workers, Pool: cfg.Pool}, core.GlignIntra, false}, nil
	case Glign:
		return methodPlan{sched.Affinity{Profile: prof, Window: cfg.Window, Telemetry: run, Workers: cfg.Workers, Pool: cfg.Pool}, core.GlignIntra, true}, nil
	case IBFS:
		return methodPlan{baselines.IBFS{Graph: g, Telemetry: run}, core.LigraC, false}, nil
	case QueryParallel:
		return methodPlan{fcfs, baselines.QueryParallel{}, false}, nil
	case Congra:
		return methodPlan{fcfs, baselines.Congra{}, false}, nil
	}
	return methodPlan{}, fmt.Errorf("systems: unknown method %q", method)
}

// Plan is the exported (policy, engine, aligned) decomposition of a method,
// used by the online serving loop (internal/serve), which forms batches from
// a live admission queue instead of a pre-materialized buffer but must keep
// each method's batching policy, engine, and alignment semantics identical
// to an offline Run — the serve-vs-offline differential test pins exactly
// that equivalence.
type Plan struct {
	// Policy partitions a buffered window of queries into batches.
	Policy sched.Policy
	// Engine evaluates one batch.
	Engine core.Engine
	// Aligned selects delayed-start injection (alignment vectors from the
	// profile) for every batch.
	Aligned bool
}

// PlanFor resolves the method's plan. The profile is required by the
// affinity-batching and aligned methods (see NeedsProfile); run receives the
// policy's batching decisions when non-nil.
func PlanFor(method string, g *graph.Graph, prof *align.Profile, cfg Config, run *telemetry.RunTrace) (Plan, error) {
	p, err := planFor(method, g, prof, cfg, run)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Policy: p.policy, Engine: p.engine, Aligned: p.aligned}, nil
}

// NeedsProfile reports whether the method requires the alignment profile.
func NeedsProfile(method string) bool {
	switch method {
	case GlignInter, GlignBatch, Glign:
		return true
	}
	return false
}

// Run evaluates the whole buffer with the named method. The returned
// Duration covers batching and evaluation, not profile construction (the
// profile is a one-time per-graph cost, reported separately — paper
// Table 14).
func Run(method string, g *graph.Graph, buffer []queries.Query, cfg Config) (*Result, error) {
	if len(buffer) == 0 {
		return nil, fmt.Errorf("systems: empty buffer")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	prof := cfg.Profile
	if prof == nil && (NeedsProfile(method) || cfg.DirectionOptimized) {
		prof = align.NewProfile(g, align.DefaultHubCount, cfg.Workers)
	}
	// The run trace must exist before planFor so the batching policies can
	// record their window decisions into it.
	run := cfg.Telemetry.StartRun(method, "")
	plan, err := planFor(method, g, prof, cfg, run)
	if err != nil {
		return nil, err
	}
	run.SetPolicy(plan.policy.Name())
	res := &Result{Method: method, Telemetry: run}
	if cfg.KeepValues {
		res.Values = make(map[int][]queries.Value, len(buffer))
	}

	start := time.Now()
	// Paradigm splitting keeps every batch homogeneous: monotone frontier
	// kernels and iterate-to-convergence kernels take different evaluation
	// paths inside every engine, so a mixed buffer yields one batch per
	// paradigm run rather than a mixed batch no engine accepts.
	res.Batches = sched.SplitParadigm(buffer, plan.policy.MakeBatches(buffer, cfg.BatchSize))
	res.Alignments = make([][]int, len(res.Batches))
	for bi, idx := range res.Batches {
		batch := sched.Select(buffer, idx)
		opt := core.Options{Workers: cfg.Workers, Pool: cfg.Pool, Tracer: cfg.Tracer}
		if cfg.DirectionOptimized && plan.engine.Name() == core.GlignIntra.Name() {
			opt.ReverseGraph = prof.Rev
		}
		if plan.aligned && !queries.AnyConvergent(batch) {
			// Delayed start schedules frontier arrivals; convergence batches
			// have no frontier, so their alignment vector stays nil.
			opt.Alignment = prof.AlignmentVector(batch)
			res.Alignments[bi] = opt.Alignment
		}
		bt := run.StartBatch(plan.engine.Name(), idx, opt.Alignment)
		opt.Telemetry = bt
		batchStart := time.Now()
		br, err := plan.engine.Run(g, batch, opt)
		if err != nil {
			return nil, fmt.Errorf("systems: %s batch %d: %w", method, bi, err)
		}
		batchDur := time.Since(batchStart)
		bt.Finish(batchDur)
		res.BatchDurations = append(res.BatchDurations, batchDur)
		res.TotalIterations += br.GlobalIterations
		// The batch engines update these counters from par.For workers with
		// atomic adds; read them atomically to keep one access protocol per
		// field even though the batch has joined (glignlint/atomicmix).
		res.EdgesProcessed += atomic.LoadInt64(&br.EdgesProcessed)
		res.LaneRelaxations += atomic.LoadInt64(&br.LaneRelaxations)
		res.ValueWrites += atomic.LoadInt64(&br.ValueWrites)
		if cfg.KeepValues {
			for qi, bufferIdx := range idx {
				res.Values[bufferIdx] = br.QueryValues(qi)
			}
		}
	}
	res.Duration = time.Since(start)
	run.Finish(res.Duration)
	// Snapshot the scheduler counters of the pool the run executed on, so the
	// exported metrics carry the steal/imbalance picture alongside the
	// per-iteration engine records.
	cfg.Telemetry.ObservePool(par.OrDefault(cfg.Pool))
	return res, nil
}

// QueryLatency returns the completion latency of the query at bufferIdx:
// the time from the start of the run until its batch finished. It returns
// false if the index was never scheduled.
func (r *Result) QueryLatency(bufferIdx int) (time.Duration, bool) {
	var acc time.Duration
	for bi, idx := range r.Batches {
		if bi >= len(r.BatchDurations) {
			break
		}
		acc += r.BatchDurations[bi]
		for _, qi := range idx {
			if qi == bufferIdx {
				return acc, true
			}
		}
	}
	return 0, false
}
