// Package systems wires the engines (internal/core, internal/baselines),
// the alignment profile (internal/align) and the batching policies
// (internal/sched) into the named evaluation methods of paper Table 5:
//
//	Ligra-S, Ligra-C, GraphM, Krill,
//	Glign-Intra, Glign-Inter, Glign-Batch, Glign,
//
// plus the §4.8 iBFS reimplementation and the §4.1 query-level-parallelism
// design. A method consumes a query buffer, partitions it into evaluation
// batches, evaluates every batch, and reports aggregate statistics — the
// unit all throughput experiments are built on.
//
// This is also where telemetry is threaded through the stack: Run opens one
// RunTrace per method run on the configured Collector, hands the policy a
// handle for its batching decisions, opens one BatchTrace per evaluation
// batch (carrying engine name, query composition and alignment vector) for
// the engines' per-iteration records, and stamps wall times on the way out.
// See internal/telemetry and OBSERVABILITY.md.
package systems
