package glign

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/oracle"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
)

// The differential harness: every evaluation method, on every kernel, on an
// R-MAT-style and a road-style synthetic graph, at one and at four workers,
// must agree element-wise with the serial label-correcting reference. All
// engines compute exact fixed points over monotone kernels, so any mismatch
// is a bug in an engine, the scheduler, or the work-stealing pool — not
// floating-point noise.
//
// Query sources are drawn by a seeded sampler. The base seed defaults to a
// fixed value so CI is reproducible, and can be overridden with
// GLIGN_DIFF_SEED to explore other samples; every failure message carries
// the seed that reproduces it.

// diffBatchSize is the queries-per-case sample size: big enough to exercise
// multi-lane batch layouts, small enough that 220 cases stay fast.
const diffBatchSize = 4

// diffBaseSeed reads the sampler seed (GLIGN_DIFF_SEED overrides the fixed
// default).
func diffBaseSeed(t *testing.T) int64 {
	if s := os.Getenv("GLIGN_DIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GLIGN_DIFF_SEED=%q: %v", s, err)
		}
		return v
	}
	return 0x91159
}

// caseSeed derives a per-case seed from the base seed and the case name, so
// each case draws an independent reproducible sample.
func caseSeed(base int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", base, name)
	return int64(h.Sum64() >> 1)
}

// repro renders the reproduction context every harness failure message
// carries: the effective base seed (as the GLIGN_DIFF_SEED assignment that
// replays the run) plus the case coordinates.
func repro(base int64, graphName, kernel, method string, workers int) string {
	return fmt.Sprintf("GLIGN_DIFF_SEED=%d graph=%s kernel=%s method=%s workers=%d",
		base, graphName, kernel, method, workers)
}

// sampleSources draws count vertices with a splitmix-style generator seeded
// by the case seed (no math/rand dependence, so the draw is stable across Go
// releases).
func sampleSources(seed int64, n, count int) []graph.VertexID {
	out := make([]graph.VertexID, count)
	x := uint64(seed)
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = graph.VertexID(z % uint64(n))
	}
	return out
}

func TestDifferentialAllMethods(t *testing.T) {
	// One dedicated work-stealing pool shared by every case: the harness
	// proves the persistent pool correct under reuse across hundreds of
	// runs, not just on a fresh pool per run.
	pool := par.NewPool(4)
	defer pool.Close()

	graphsUnderTest := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat-LJ", graph.MustGenerate(graph.LJ, graph.Tiny)},
		{"road-CA", graph.MustGenerate(graph.RDCA, graph.Tiny)},
	}
	kernels := []queries.Kernel{
		queries.BFS, queries.SSSP, queries.SSWP, queries.SSNP, queries.Viterbi,
		queries.KHop(queries.DefaultKHopDepth),
	}
	base := diffBaseSeed(t)

	// The serial reference is method- and worker-independent; cache it per
	// (graph, kernel, source) so the 11-method sweep recomputes nothing.
	type refKey struct {
		gi     int
		kernel string
		src    graph.VertexID
	}
	refCache := map[refKey][]queries.Value{}
	refFor := func(gi int, g *graph.Graph, k queries.Kernel, src graph.VertexID) []queries.Value {
		key := refKey{gi, k.Name(), src}
		if v, ok := refCache[key]; ok {
			return v
		}
		v := engine.ReferenceRun(g, queries.Query{Kernel: k, Source: src})
		refCache[key] = v
		return v
	}

	for gi, gc := range graphsUnderTest {
		// The alignment profile is a per-graph precompute; building it once
		// keeps the Glign-Inter/Batch/full cases from re-running reverse BFS
		// per case.
		prof := align.NewProfile(gc.g, align.DefaultHubCount, 0)
		for _, k := range kernels {
			for _, workers := range []int{1, 4, 8} {
				for _, method := range Methods() {
					name := fmt.Sprintf("%s/%s/%s/w%d", gc.name, k.Name(), method, workers)
					seed := caseSeed(base, name)
					t.Run(name, func(t *testing.T) {
						ctx := repro(base, gc.name, k.Name(), method, workers)
						srcs := sampleSources(seed, gc.g.NumVertices(), diffBatchSize)
						buffer := make([]queries.Query, len(srcs))
						for i, s := range srcs {
							buffer[i] = queries.Query{Kernel: k, Source: s}
						}
						cfg := systems.Config{
							BatchSize:  diffBatchSize,
							Workers:    workers,
							Pool:       pool,
							Profile:    prof,
							KeepValues: true,
						}
						res, err := systems.Run(method, gc.g, buffer, cfg)
						if err != nil {
							t.Fatalf("run failed: %v [case seed %d, %s]", err, seed, ctx)
						}
						for qi, q := range buffer {
							want := refFor(gi, gc.g, k, q.Source)
							got := res.Values[qi]
							if len(got) != len(want) {
								t.Fatalf("query %d (source v%d): %d values, want %d [case seed %d, %s]",
									qi, q.Source, len(got), len(want), seed, ctx)
							}
							for v := range want {
								if got[v] != want[v] {
									t.Fatalf("query %d (source v%d) disagrees with reference at vertex %d: %v != %v [case seed %d, %s]",
										qi, q.Source, v, got[v], want[v], seed, ctx)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestDifferentialConvergenceKernels is the convergence-paradigm leg of the
// harness: PageRank and LabelProp run through every method with a Jacobi
// route (all but GraphM and Congra, whose engines refuse the paradigm) and
// must be bit-identical to the independent serial Jacobi golden — the
// determinism the max-residual criterion and the in-neighbor fold-order
// contract exist to provide. Every result additionally passes the oracle
// invariants for its kernel.
func TestDifferentialConvergenceKernels(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()

	graphsUnderTest := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat-LJ", graph.MustGenerate(graph.LJ, graph.Tiny)},
		{"road-CA", graph.MustGenerate(graph.RDCA, graph.Tiny)},
	}
	var methods []string
	for _, m := range Methods() {
		if m == systems.GraphM || m == systems.Congra {
			continue
		}
		methods = append(methods, m)
	}
	base := diffBaseSeed(t)

	type refKey struct {
		gi     int
		kernel string
		src    graph.VertexID
	}
	refCache := map[refKey][]queries.Value{}
	refFor := func(gi int, g *graph.Graph, q queries.Query) []queries.Value {
		key := refKey{gi, q.Kernel.Name(), q.Source}
		if v, ok := refCache[key]; ok {
			return v
		}
		v := oracle.GoldenValues(g, q)
		refCache[key] = v
		return v
	}

	for gi, gc := range graphsUnderTest {
		prof := align.NewProfile(gc.g, align.DefaultHubCount, 0)
		for _, ck := range queries.Convergent() {
			k := queries.Kernel(ck)
			for _, workers := range []int{1, 4, 8} {
				for _, method := range methods {
					name := fmt.Sprintf("%s/%s/%s/w%d", gc.name, k.Name(), method, workers)
					seed := caseSeed(base, name)
					t.Run(name, func(t *testing.T) {
						ctx := repro(base, gc.name, k.Name(), method, workers)
						srcs := sampleSources(seed, gc.g.NumVertices(), diffBatchSize)
						buffer := make([]queries.Query, len(srcs))
						for i, s := range srcs {
							buffer[i] = queries.Query{Kernel: k, Source: s}
						}
						res, err := systems.Run(method, gc.g, buffer, systems.Config{
							BatchSize:  diffBatchSize,
							Workers:    workers,
							Pool:       pool,
							Profile:    prof,
							KeepValues: true,
						})
						if err != nil {
							t.Fatalf("run failed: %v [case seed %d, %s]", err, seed, ctx)
						}
						for qi, q := range buffer {
							want := refFor(gi, gc.g, q)
							got := res.Values[qi]
							if len(got) != len(want) {
								t.Fatalf("query %d: %d values, want %d [case seed %d, %s]",
									qi, len(got), len(want), seed, ctx)
							}
							for v := range want {
								if got[v] != want[v] {
									t.Fatalf("query %d (source v%d) disagrees with the Jacobi golden at vertex %d: %v != %v [case seed %d, %s]",
										qi, q.Source, v, got[v], want[v], seed, ctx)
								}
							}
							if vio := oracle.CheckResult(gc.g, q, got); len(vio) != 0 {
								t.Fatalf("query %d violates oracle invariants: %+v [case seed %d, %s]",
									qi, vio, seed, ctx)
							}
						}
					})
				}
			}
		}
	}
}

// TestDifferentialDirectionOptimized covers the pull path of the hybrid
// engine under the pool: dense iterations run over the reversed graph, and
// the fixed point must still match the push-only reference for every kernel.
func TestDifferentialDirectionOptimized(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	prof := align.NewProfile(g, align.DefaultHubCount, 0)
	base := diffBaseSeed(t)
	for _, k := range []queries.Kernel{queries.BFS, queries.SSSP, queries.SSWP, queries.SSNP, queries.Viterbi} {
		for _, workers := range []int{1, 4, 8} {
			name := fmt.Sprintf("%s/w%d", k.Name(), workers)
			seed := caseSeed(base, "diropt/"+name)
			t.Run(name, func(t *testing.T) {
				ctx := repro(base, "rmat-LJ", k.Name(), systems.Glign+"(direction-optimized)", workers)
				srcs := sampleSources(seed, g.NumVertices(), diffBatchSize)
				buffer := make([]queries.Query, len(srcs))
				for i, s := range srcs {
					buffer[i] = queries.Query{Kernel: k, Source: s}
				}
				res, err := systems.Run(systems.Glign, g, buffer, systems.Config{
					BatchSize:          diffBatchSize,
					Workers:            workers,
					Pool:               pool,
					Profile:            prof,
					KeepValues:         true,
					DirectionOptimized: true,
				})
				if err != nil {
					t.Fatalf("run failed: %v [case seed %d, %s]", err, seed, ctx)
				}
				for qi, q := range buffer {
					want := engine.ReferenceRun(g, q)
					got := res.Values[qi]
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("query %d (source v%d) disagrees at vertex %d: %v != %v [case seed %d, %s]",
								qi, q.Source, v, got[v], want[v], seed, ctx)
						}
					}
				}
			})
		}
	}
}
