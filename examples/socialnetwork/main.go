// Social-network analytics: the scenario motivating concurrent graph
// processing in the paper's introduction. A batch of analysts concurrently
// issues vertex-specific queries against one social graph — influence
// radius (BFS), tie strength (SSWP), and weighted distance (SSSP) — and the
// serving system must sustain throughput.
//
// This example runs the same 64-query mixed buffer under the sequential
// baseline (Ligra-S), the two-level concurrent design (Ligra-C), and full
// Glign, and prints the throughput of each — the shape of paper Figure 11.
package main

import (
	"fmt"
	"math/rand"

	glign "github.com/glign/glign"
)

func main() {
	// A synthetic stand-in for the Twitter graph (directed, power-law).
	g, err := glign.Generate("TW", "small")
	if err != nil {
		panic(err)
	}
	fmt.Println("graph:", g)

	// 64 user-centric queries, sources spread across the graph structure.
	sources := glign.SampleSources(g, 64, 2026)
	rng := rand.New(rand.NewSource(7))
	kernels := []glign.Kernel{glign.BFS, glign.SSSP, glign.SSWP}
	buffer := make([]glign.Query, len(sources))
	for i, s := range sources {
		buffer[i] = glign.Query{Kernel: kernels[rng.Intn(len(kernels))], Source: s}
	}

	var baseline float64
	for _, method := range []string{glign.MethodLigraS, glign.MethodLigraC, glign.MethodGlign} {
		rt, err := glign.NewRuntime(g, glign.WithMethod(method), glign.WithBatchSize(64))
		if err != nil {
			panic(err)
		}
		report, err := rt.Run(buffer)
		if err != nil {
			panic(err)
		}
		secs := report.DurationSeconds()
		if baseline == 0 {
			baseline = secs
		}
		fmt.Printf("%-12s %8.3fs  (%.2fx vs Ligra-S, %.0f queries/s)\n",
			method, secs, baseline/secs, float64(len(buffer))/secs)
	}

	// Drill into one influence query: how many users are within 3 hops?
	rt, _ := glign.NewRuntime(g)
	report, err := rt.Run([]glign.Query{{Kernel: glign.BFS, Source: sources[0]}})
	if err != nil {
		panic(err)
	}
	within := 0
	for _, lvl := range report.Values(0) {
		if lvl <= 3 {
			within++
		}
	}
	fmt.Printf("\ninfluence: user v%d reaches %d of %d users within 3 hops\n",
		sources[0], within, g.NumVertices())
}
