// Paper walkthrough: reproduces, end to end, the worked example of the
// paper's Sections 2-3 on the Figure 3 graph — the evaluation trace of
// Table 1, the frontier interleavings of Tables 2 and 3, and the affinity
// arithmetic of §3.3 (1/9 for the naive alignment, 1/3 for the delayed
// start I=[2,0]).
package main

import (
	"fmt"

	glign "github.com/glign/glign"
)

func main() {
	g := glign.PaperExampleGraph()
	fmt.Println("the Figure 3 graph:", g)

	// Table 1: sssp(v1).
	rt, err := glign.NewRuntime(g)
	if err != nil {
		panic(err)
	}
	rep, err := rt.Run([]glign.Query{{Kernel: glign.SSSP, Source: 0}})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nTable 1 — final values of sssp(v1):")
	for v, x := range rep.Values(0) {
		fmt.Printf("  v%d = %v\n", v+1, x)
	}

	// §3.3: the batch [sssp(v2), sssp(v8)] under two alignments.
	batch := []glign.Query{
		{Kernel: glign.SSSP, Source: 1},
		{Kernel: glign.SSSP, Source: 7},
	}
	naive := glign.Affinity(g, batch, nil) // Table 2 interleaving
	better := glign.Affinity(g, batch, []int{2, 0})
	fmt.Printf("\n§3.3 — affinity of [sssp(v2), sssp(v8)]:\n")
	fmt.Printf("  I=[0,0] (Table 2): %.6f   (paper: 1/9 = %.6f)\n", naive, 1.0/9)
	fmt.Printf("  I=[2,0] (Table 3): %.6f   (paper: 1/3 = %.6f)\n", better, 1.0/3)

	// What the heuristic would do with this batch on this graph.
	I := rt.AlignmentVector(batch)
	fmt.Printf("\nheuristic alignment vector: %v (affinity %.6f)\n",
		I, glign.Affinity(g, batch, I))

	// And the batch still computes the exact shortest paths under any
	// alignment (Theorem 3.2).
	rep, err = rt.Run(batch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsssp(v2) distance to v9: %v (paper Table 2 reaches v9 at iteration 3)\n",
		rep.Value(0, 8))
}
