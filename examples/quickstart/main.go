// Quickstart: evaluate a small batch of concurrent queries on the paper's
// 9-vertex running example (Figure 3) and print the per-vertex results —
// reproducing the evaluation trace of paper Table 1.
package main

import (
	"fmt"

	glign "github.com/glign/glign"
)

func main() {
	// The graph of paper Figure 3-(b): 9 vertices, 14 weighted edges.
	g := glign.PaperExampleGraph()
	fmt.Println("graph:", g)

	rt, err := glign.NewRuntime(g, glign.WithBatchSize(4))
	if err != nil {
		panic(err)
	}

	// Three concurrent queries evaluated in one aligned batch: the SSSP
	// queries of Tables 1 and 2, plus a BFS.
	buffer := []glign.Query{
		{Kernel: glign.SSSP, Source: 0}, // sssp(v1) — paper Table 1
		{Kernel: glign.SSSP, Source: 1}, // sssp(v2) — paper Table 2
		{Kernel: glign.BFS, Source: 0},  // bfs(v1)
	}
	report, err := rt.Run(buffer)
	if err != nil {
		panic(err)
	}

	fmt.Printf("evaluated %d queries in %.4fs (%d global iterations)\n\n",
		report.NumQueries(), report.DurationSeconds(), report.TotalIterations())
	for i, q := range buffer {
		fmt.Printf("%s:\n", q)
		vals := report.Values(i)
		for v, x := range vals {
			fmt.Printf("  v%d = %v\n", v+1, x)
		}
	}
	// The sssp(v1) values printed above are exactly the final row of paper
	// Table 1: [0 17 4 12 5 7 6 22 10].
}
