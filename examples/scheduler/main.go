// Scheduler introspection: how Glign's affinity-oriented batching (paper
// §3.4) regroups an incoming query stream. A buffer of SSSP queries arrives
// in random order; the example prints which evaluation batch each query
// landed in under FCFS vs affinity-oriented batching, together with each
// query's estimated heavy-iteration arrival time (hops to the nearest hub),
// and the end-to-end effect on evaluation time.
package main

import (
	"fmt"

	glign "github.com/glign/glign"
)

func main() {
	g, err := glign.Generate("LJ", "small")
	if err != nil {
		panic(err)
	}
	fmt.Println("graph:", g)

	sources := glign.SampleSources(g, 32, 5)
	buffer := make([]glign.Query, len(sources))
	for i, s := range sources {
		buffer[i] = glign.Query{Kernel: glign.SSSP, Source: s}
	}

	// Glign-Intra batches FCFS; Glign-Batch regroups by affinity.
	intra, err := glign.NewRuntime(g, glign.WithMethod(glign.MethodGlignIntra), glign.WithBatchSize(8))
	if err != nil {
		panic(err)
	}
	batch, err := glign.NewRuntime(g, glign.WithMethod(glign.MethodGlignBatch), glign.WithBatchSize(8))
	if err != nil {
		panic(err)
	}

	repIntra, err := intra.Run(buffer)
	if err != nil {
		panic(err)
	}
	repBatch, err := batch.Run(buffer)
	if err != nil {
		panic(err)
	}

	prof := batch.Profile()
	fmt.Println("\naffinity-oriented batches (query: arrival estimate):")
	for bi, idx := range repBatch.Batches() {
		fmt.Printf("  batch %d:", bi)
		for _, qi := range idx {
			fmt.Printf(" %s:%d", buffer[qi], prof.ArrivalEstimate(buffer[qi].Source))
		}
		fmt.Println()
	}
	fmt.Printf("\nFCFS batching (Glign-Intra):     %.3fs\n", repIntra.DurationSeconds())
	fmt.Printf("affinity batching (Glign-Batch): %.3fs\n", repBatch.DurationSeconds())
}
