// Road-network routing: concurrent single-source shortest path queries from
// many depots on a planar road network — the regime of paper §4.7
// (Table 15), where frontiers stay tiny, "heavy iterations" never form, and
// Glign's intra-iteration alignment is the technique that matters.
//
// The example computes per-depot travel-time maps concurrently, picks the
// best depot for a set of delivery targets, and compares Glign-Intra
// against the two-level design to show the road-network speedup.
package main

import (
	"fmt"
	"math"

	glign "github.com/glign/glign"
)

func main() {
	g, err := glign.Generate("RD-CA", "small")
	if err != nil {
		panic(err)
	}
	fmt.Println("road network:", g)

	// Eight depots scattered over the network.
	depots := glign.SampleSources(g, 8, 11)
	buffer := make([]glign.Query, len(depots))
	for i, d := range depots {
		buffer[i] = glign.Query{Kernel: glign.SSSP, Source: d}
	}

	// Compare the two-level frontier design with the query-oblivious one.
	var times []float64
	for _, method := range []string{glign.MethodLigraC, glign.MethodGlignIntra} {
		rt, err := glign.NewRuntime(g, glign.WithMethod(method), glign.WithBatchSize(8))
		if err != nil {
			panic(err)
		}
		rep, err := rt.Run(buffer)
		if err != nil {
			panic(err)
		}
		times = append(times, rep.DurationSeconds())
		fmt.Printf("%-12s %.3fs\n", method, rep.DurationSeconds())
	}
	fmt.Printf("query-oblivious frontier speedup on road network: %.2fx\n\n", times[0]/times[1])

	// Use the computed distance maps: assign each delivery target to its
	// nearest depot.
	rt, _ := glign.NewRuntime(g, glign.WithBatchSize(8))
	rep, err := rt.Run(buffer)
	if err != nil {
		panic(err)
	}
	targets := glign.SampleSources(g, 5, 99)
	for _, t := range targets {
		best, bestDist := -1, math.Inf(1)
		for i := range depots {
			if d := rep.Value(i, t); d < bestDist {
				best, bestDist = i, d
			}
		}
		fmt.Printf("target v%-7d -> depot v%-7d (travel cost %.0f)\n",
			t, depots[best], bestDist)
	}
}
