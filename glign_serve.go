package glign

import (
	"time"

	"github.com/glign/glign/internal/serve"
)

// Live serving: Serve starts a long-lived server that admits queries one at
// a time onto a bounded queue, batches them with a time-and-size window
// under the configured method's policy, and executes the batches on the
// shared work-stealing pool — the online counterpart of Runtime.Run, which
// evaluates a pre-materialized buffer. The server is also a traffic-shaping
// front end: an epoch-invalidated result cache, in-flight dedup of identical
// queries, affinity-aware admission ordering, and tiered load-shedding.
// SERVING.md is the full contract (admission state machine, cache epoch
// semantics, dedup fan-out guarantees, tier/shed policy, telemetry ledger).

// Server is a live query server (admission queue -> windowed batches ->
// engine -> per-query tickets). Submit/SubmitTimeout/SubmitWith admit
// queries, BumpEpoch invalidates cached results after a data change,
// Shutdown stops admission, Close drains everything admitted and joins the
// server's goroutines.
type Server = serve.Server

// ServeConfig parameterizes a Server: method, batch size cap, window
// duration, admission-queue capacity and per-tier bounds, result-cache
// capacity, admission policy, deadlines clock, pool, telemetry.
type ServeConfig = serve.Config

// QueryTicket is the completion handle of one submitted query: Wait (or
// Done + Query/values) yields the query's full per-vertex result vector or
// a typed error; ResultEpoch reports the data epoch the values were
// computed at.
type QueryTicket = serve.Ticket

// SubmitOptions carries per-query submission knobs (deadline, priority
// tier) for Server.SubmitWith.
type SubmitOptions = serve.SubmitOptions

// QueryTier is a query's admission priority class. Under overload the
// server sheds queued lower-tier queries to admit higher ones
// (shed-low-first; see SERVING.md).
type QueryTier = serve.Tier

// The three priority tiers, lowest first. TierNormal is the zero value and
// the default for submissions that don't set a tier.
const (
	TierLow    = serve.TierLow
	TierNormal = serve.TierNormal
	TierHigh   = serve.TierHigh
)

// Admission orderings for ServeConfig.AdmissionPolicy: FCFS dispatches the
// pending queue in arrival order, Affinity ranks it by estimated
// heavy-iteration arrival (closestHV). The default (empty) follows the
// method.
const (
	AdmissionFCFS     = serve.AdmissionFCFS
	AdmissionAffinity = serve.AdmissionAffinity
)

// ServeClock is the server's injectable time source; NewFakeServeClock
// builds the deterministic test clock that drives window expiry and
// deadline misses without wall-clock sleeps.
type ServeClock = serve.Clock

// NewFakeServeClock returns a manually advanced clock for deterministic
// serving tests (see serve.FakeClock: Advance, BlockUntil).
func NewFakeServeClock(start time.Time) *serve.FakeClock {
	return serve.NewFakeClock(start)
}

// Typed serving errors, re-exported for errors.Is dispatch.
var (
	// ErrQueueFull is the admission backpressure rejection.
	ErrQueueFull = serve.ErrQueueFull
	// ErrServerClosed rejects submissions after Shutdown/Close began.
	ErrServerClosed = serve.ErrClosed
	// ErrQueryDeadline completes a ticket whose deadline expired while it
	// was still queued.
	ErrQueryDeadline = serve.ErrDeadline
	// ErrQueryShed completes a queued ticket sacrificed for a
	// higher-priority arrival under overload.
	ErrQueryShed = serve.ErrShed
)

// Serve starts a live query server on g. The zero config serves full-Glign
// batches of 64 on a 5ms window with a 1024-query admission bound, a
// 1024-entry result cache, in-flight dedup, and the method's own admission
// ordering.
func Serve(g *Graph, cfg ServeConfig) (*Server, error) {
	return serve.New(g, cfg)
}
