package glign

import (
	"time"

	"github.com/glign/glign/internal/serve"
)

// Live serving: Serve starts a long-lived server that admits queries one at
// a time onto a bounded queue, batches them with a time-and-size window
// under the configured method's policy, and executes the batches on the
// shared work-stealing pool — the online counterpart of Runtime.Run, which
// evaluates a pre-materialized buffer. See internal/serve and the DESIGN.md
// "Live serving loop" section for the drain and deadline semantics.

// Server is a live query server (admission queue -> windowed batches ->
// engine -> per-query tickets). Submit/SubmitTimeout admit queries, Shutdown
// stops admission, Close drains everything admitted and joins the server's
// goroutines.
type Server = serve.Server

// ServeConfig parameterizes a Server: method, batch size cap, window
// duration, admission-queue capacity, deadlines clock, pool, telemetry.
type ServeConfig = serve.Config

// QueryTicket is the completion handle of one submitted query: Wait (or
// Done + Query/values) yields the query's full per-vertex result vector or
// a typed error.
type QueryTicket = serve.Ticket

// ServeClock is the server's injectable time source; NewFakeServeClock
// builds the deterministic test clock that drives window expiry and
// deadline misses without wall-clock sleeps.
type ServeClock = serve.Clock

// NewFakeServeClock returns a manually advanced clock for deterministic
// serving tests (see serve.FakeClock: Advance, BlockUntil).
func NewFakeServeClock(start time.Time) *serve.FakeClock {
	return serve.NewFakeClock(start)
}

// Typed serving errors, re-exported for errors.Is dispatch.
var (
	// ErrQueueFull is the admission backpressure rejection.
	ErrQueueFull = serve.ErrQueueFull
	// ErrServerClosed rejects submissions after Shutdown/Close began.
	ErrServerClosed = serve.ErrClosed
	// ErrQueryDeadline completes a ticket whose deadline expired while it
	// was still queued.
	ErrQueryDeadline = serve.ErrDeadline
)

// Serve starts a live query server on g. The zero config serves full-Glign
// batches of 64 on a 5ms window with a 1024-query admission bound.
func Serve(g *Graph, cfg ServeConfig) (*Server, error) {
	return serve.New(g, cfg)
}
